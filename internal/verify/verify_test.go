package verify

import (
	"errors"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

const gpuMem = int64(16) << 30

// scenario builds a deterministic graph, system and verified plan whose
// corruptions the negative tests classify: a CPU input feeding two
// colocated GPU ops on gpu:0 and two more on gpu:1, strictly ordered.
func scenario(t *testing.T) (*graph.Graph, sim.System, sim.Plan, sim.Result) {
	t.Helper()
	g := graph.New(5)
	in := g.AddNode(graph.Node{Name: "in", Kind: graph.KindCPU, Cost: 10 * time.Microsecond})
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Memory: 1 << 20, Coloc: "grp"})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 80 * time.Microsecond, Memory: 1 << 20, Coloc: "grp"})
	c := g.AddNode(graph.Node{Name: "c", Kind: graph.KindGPU, Cost: 60 * time.Microsecond, Memory: 1 << 20})
	d := g.AddNode(graph.Node{Name: "d", Kind: graph.KindGPU, Cost: 40 * time.Microsecond, Memory: 1 << 20})
	// e is deliberately independent of the other GPU ops (fed by the
	// input only) and has the same duration as d, so order and overlap
	// corruptions can swap or collide their windows without tripping
	// the duration or precedence checks first.
	e := g.AddNode(graph.Node{Name: "e", Kind: graph.KindGPU, Cost: 40 * time.Microsecond, Memory: 1 << 20})
	for _, ed := range [][2]graph.NodeID{{in, a}, {a, b}, {a, c}, {b, d}, {c, d}, {in, e}} {
		if err := g.AddEdge(ed[0], ed[1], 4<<20); err != nil {
			t.Fatal(err)
		}
	}
	sys := sim.NewSystem(2, gpuMem)
	plan := sim.Plan{
		Device: []sim.DeviceID{0, 1, 1, 2, 2, 2},
		Order: [][]graph.NodeID{
			{in},
			{a, b},
			{c, d, e},
		},
	}
	res, err := Check(g, sys, plan)
	if err != nil {
		t.Fatalf("scenario plan must verify: %v", err)
	}
	return g, sys, plan, res
}

func TestCheckAcceptsVerifiedScenario(t *testing.T) {
	g, sys, plan, res := scenario(t)
	if err := CheckPlan(g, sys, plan); err != nil {
		t.Fatal(err)
	}
	if err := CheckExecution(g, sys, plan, res); err != nil {
		t.Fatal(err)
	}
	// The independent checker and the simulator's own Validate must
	// agree on acceptance.
	if err := plan.Validate(g, sys); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedPlansRejectedWithDistinctErrors is the negative gallery:
// one deliberate corruption per invariant class, each rejected with its
// own sentinel (and with the base ErrInvariant).
func TestCorruptedPlansRejectedWithDistinctErrors(t *testing.T) {
	cases := []struct {
		name    string
		want    error
		corrupt func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result)
		static  bool // corruption detected by CheckPlan rather than CheckExecution
	}{
		{
			name:   "affinity/gpu-op-on-cpu",
			want:   ErrAffinity,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Device[1] = 0 // GPU op onto the CPU
				plan.Order = nil
			},
		},
		{
			name:   "affinity/unknown-device",
			want:   ErrAffinity,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Device[1] = 99
				plan.Order = nil
			},
		},
		{
			name:   "affinity/failed-device",
			want:   ErrAffinity,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				*sys = sys.WithFailedDevice(1)
			},
		},
		{
			name:   "affinity/short-coverage",
			want:   ErrAffinity,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Device = plan.Device[:3]
				plan.Order = nil
			},
		},
		{
			name:   "colocation/group-split",
			want:   ErrColocation,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Device[2] = 2 // b leaves a's device, splitting "grp"
				plan.Order = nil
			},
		},
		{
			name:   "memory/over-capacity",
			want:   ErrMemory,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				shrunk := sys.Clone()
				shrunk.Devices[1].Memory = 1 << 10
				*sys = shrunk
			},
		},
		{
			name:   "schedule/duplicate-entry",
			want:   ErrSchedule,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Order[1] = []graph.NodeID{1, 1}
			},
		},
		{
			name:   "schedule/wrong-device-entry",
			want:   ErrSchedule,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Order[1] = []graph.NodeID{1, 2, 3} // node 3 lives on device 2
			},
		},
		{
			name:   "schedule/missing-coverage",
			want:   ErrSchedule,
			static: true,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				plan.Order[2] = []graph.NodeID{3}
			},
		},
		{
			name: "schedule/realized-order-contradicts-plan",
			want: ErrSchedule,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				// d and e run on device 2 in that order with equal
				// durations and independent inputs: swapping their
				// realized windows contradicts only the strict order.
				res.Start[4], res.Start[5] = res.Start[5], res.Start[4]
				res.Finish[4], res.Finish[5] = res.Finish[5], res.Finish[4]
			},
		},
		{
			name: "precedence/start-before-input-arrives",
			want: ErrPrecedence,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				// Node d (cross-device consumer of c) starts at time zero.
				shift := res.Start[4]
				res.Start[4] = 0
				res.Finish[4] -= shift
				res.Makespan = maxFinish(res)
				rebalanceBusy(sys, plan, res)
			},
		},
		{
			name: "device-overlap/two-ops-at-once",
			want: ErrDeviceOverlap,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				// Run e concurrently with d on device 2: identical
				// window. e's only input arrived long before d started,
				// so precedence still holds and the overlap is the first
				// violated invariant (serialization is checked before
				// strict order).
				res.Start[5] = res.Start[4]
				res.Finish[5] = res.Finish[4]
				res.Makespan = maxFinish(res)
			},
		},
		{
			name: "link-overlap/double-booked-link",
			want: ErrLinkOverlap,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				// Link 1→2 carries a→c and then b→d, with b→d enqueued
				// while a→c is still in service. Start b→d at its
				// enqueue instant instead of waiting for the link: the
				// window stays sane and the consumer still starts after
				// the (now earlier) finish, so only the link discipline
				// is violated.
				overlapSameLink(t, res)
			},
		},
		{
			name: "accounting/makespan-misreported",
			want: ErrAccounting,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				res.Makespan += time.Microsecond
			},
		},
		{
			name: "accounting/device-busy-misreported",
			want: ErrAccounting,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				res.DeviceBusy[1] += time.Microsecond
			},
		},
		{
			name: "accounting/transfer-mispriced",
			want: ErrAccounting,
			corrupt: func(t *testing.T, g *graph.Graph, sys *sim.System, plan *sim.Plan, res *sim.Result) {
				// A transfer served faster than the link model allows.
				tr := &res.Transfers[0]
				tr.Finish -= time.Microsecond
				res.LinkBusy[[2]sim.DeviceID{tr.From, tr.To}] -= time.Microsecond
				// Keep the consumer legal: it already starts at or after
				// the original (later) finish.
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, sys, plan, res := scenario(t)
			tc.corrupt(t, g, &sys, &plan, &res)
			var err error
			if tc.static {
				err = CheckPlan(g, sys, plan)
			} else {
				err = CheckExecution(g, sys, plan, res)
			}
			if err == nil {
				t.Fatalf("corruption accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("rejected as %v, want class %v", err, tc.want)
			}
			if !errors.Is(err, ErrInvariant) {
				t.Fatalf("error %v does not wrap ErrInvariant", err)
			}
			// The class sentinels must stay distinct: the error matches
			// exactly one of them.
			classes := []error{ErrAffinity, ErrColocation, ErrMemory, ErrSchedule, ErrPrecedence, ErrDeviceOverlap, ErrLinkOverlap, ErrAccounting}
			matched := 0
			for _, cl := range classes {
				if errors.Is(err, cl) {
					matched++
				}
			}
			if matched != 1 {
				t.Fatalf("error %v matches %d invariant classes, want exactly 1", err, matched)
			}
		})
	}
}

// maxFinish recomputes the last finish over all operations.
func maxFinish(res *sim.Result) time.Duration {
	var m time.Duration
	for _, f := range res.Finish {
		if f > m {
			m = f
		}
	}
	return m
}

// rebalanceBusy recomputes DeviceBusy from the (forged) windows so a
// timing corruption doesn't trip the accounting check first.
func rebalanceBusy(sys *sim.System, plan *sim.Plan, res *sim.Result) {
	for d := range res.DeviceBusy {
		res.DeviceBusy[d] = 0
	}
	for i := range res.Start {
		res.DeviceBusy[plan.Device[i]] += res.Finish[i] - res.Start[i]
	}
}

// overlapSameLink finds a transfer that was enqueued while an earlier
// one still occupied the same directional link, and forges it to start
// at its enqueue instant. The window stays internally sane (start ≥
// enqueue, modelled duration preserved) and the consumer still starts
// after the new finish, so only the link discipline is violated.
func overlapSameLink(t *testing.T, res *sim.Result) {
	t.Helper()
	byLink := map[[2]sim.DeviceID][]int{}
	for i, tr := range res.Transfers {
		lk := [2]sim.DeviceID{tr.From, tr.To}
		byLink[lk] = append(byLink[lk], i)
	}
	for _, idxs := range byLink {
		for _, ia := range idxs {
			for _, ib := range idxs {
				a, b := &res.Transfers[ia], &res.Transfers[ib]
				if b.Enqueue <= a.Start || b.Enqueue >= a.Finish || b.Start < a.Finish {
					continue
				}
				dur := b.Finish - b.Start
				b.Start = b.Enqueue
				b.Finish = b.Start + dur
				return
			}
		}
	}
	t.Skip("scenario produced no queued transfer to overlap")
}

func TestCheckAgreesWithPlanValidateOnGeneratedGraphs(t *testing.T) {
	// CheckPlan is an independent re-implementation of Plan.Validate
	// plus memory; the two must agree on accept/reject for structurally
	// random plans.
	for seed := int64(0); seed < 50; seed++ {
		cfg := gen.RandomConfig(seed)
		g, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, gpuMem)
		plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes()), Policy: sim.PolicyFIFO}
		for _, nd := range g.Nodes() {
			if nd.Kind == graph.KindGPU {
				plan.Device[nd.ID] = sim.DeviceID(1 + seed%2)
			}
		}
		vErr := plan.Validate(g, sys)
		mErr := plan.CheckMemory(g, sys)
		cErr := CheckPlan(g, sys, plan)
		if (vErr == nil && mErr == nil) != (cErr == nil) {
			t.Fatalf("seed %d: Validate=%v CheckMemory=%v but CheckPlan=%v", seed, vErr, mErr, cErr)
		}
	}
}
