package verify

import (
	"testing"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

func TestLowerBoundEmptyGraph(t *testing.T) {
	lb, err := LowerBound(graph.New(0), sim.NewSystem(2, gpuMem))
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Fatalf("empty graph bound %v, want 0", lb)
	}
}

func TestLowerBoundChainIsCriticalPath(t *testing.T) {
	// A pure chain on identical-speed devices has LP optimum exactly the
	// chain length: the relaxation's precedence constraints sum along it
	// and nothing cheaper is feasible.
	g := graph.New(3)
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 100 * time.Microsecond})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 200 * time.Microsecond})
	c := g.AddNode(graph.Node{Name: "c", Kind: graph.KindGPU, Cost: 300 * time.Microsecond})
	if err := g.AddEdge(a, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 0); err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(g, sim.NewSystem(2, gpuMem))
	if err != nil {
		t.Fatal(err)
	}
	if want := 600 * time.Microsecond; lb != want {
		t.Fatalf("chain bound %v, want %v", lb, want)
	}
}

func TestLowerBoundAggregateCapacity(t *testing.T) {
	// Eight independent equal ops on two GPUs: the precedence relaxation
	// alone would allow the single-op duration, but aggregate capacity
	// forces total-work/2.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 100 * time.Microsecond})
	}
	lb, err := LowerBound(g, sim.NewSystem(2, gpuMem))
	if err != nil {
		t.Fatal(err)
	}
	if want := 400 * time.Microsecond; lb != want {
		t.Fatalf("independent-ops bound %v, want %v", lb, want)
	}
}

func TestLowerBoundNoCompatibleDevice(t *testing.T) {
	g := graph.New(1)
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond})
	sys := sim.NewSystem(2, gpuMem)
	sys = sys.WithFailedDevice(1)
	sys = sys.WithFailedDevice(2)
	if _, err := LowerBound(g, sys); err == nil {
		t.Fatal("expected error with every GPU failed")
	}
}

func TestLowerBoundDeterministic(t *testing.T) {
	g, err := gen.Generate(gen.RandomConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, gpuMem)
	a, err := LowerBound(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LowerBound(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("bound not deterministic: %v vs %v", a, b)
	}
}

// TestLowerBoundHoldsForBaselinePlans is the bound's soundness test:
// on generated graphs, every baseline plan that verifies must realize a
// makespan at or above the LP relaxation.
func TestLowerBoundHoldsForBaselinePlans(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, gpuMem)
		lb, err := LowerBound(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if lb < 0 {
			t.Fatalf("seed %d: negative bound %v", seed, lb)
		}
		plans := map[string]func() (sim.Plan, error){
			"single-gpu": func() (sim.Plan, error) { return baselines.SingleGPU(g, sys) },
			"heft":       func() (sim.Plan, error) { return baselines.HEFT(g, sys) },
			"baechi": func() (sim.Plan, error) {
				p, _, _, err := baselines.BestBaechi(g, sys)
				return p, err
			},
		}
		for name, mk := range plans {
			plan, err := mk()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			res, err := Check(g, sys, plan)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if res.Makespan < lb {
				t.Fatalf("seed %d %s: makespan %v undercuts lower bound %v", seed, name, res.Makespan, lb)
			}
		}
	}
}
