package verify_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pesto/internal/gen"
	"pesto/internal/pipeline"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// buildPipelinePlan pins a deterministic S=2, M=4, GPipe training
// pipeline the corruption tests below can mutate.
func buildPipelinePlan(t *testing.T) (*pipeline.Plan, sim.System) {
	t.Helper()
	g, err := gen.Generate(gen.PipelineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, sweepGPUMem)
	part, err := pipeline.PartitionDP(g, sys, sys.GPUs(), 2)
	if err != nil {
		t.Fatalf("PartitionDP: %v", err)
	}
	p, err := pipeline.Build(part, sys, 4, 2, pipeline.ScheduleGPipe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p, sys
}

func TestCheckPipelineAccepts(t *testing.T) {
	p, sys := buildPipelinePlan(t)
	res, err := verify.CheckPipeline(p.Graph, sys, p.Sim, p.Meta)
	if err != nil {
		t.Fatalf("CheckPipeline rejects a freshly built plan: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatal("verified pipeline has no makespan")
	}
}

// TestCheckPipelineRejects corrupts one invariant at a time and demands
// an ErrPipeline (and therefore ErrInvariant) rejection for each.
func TestCheckPipelineRejects(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *pipeline.Plan, sys *sim.System)
	}{
		{"malformed-meta", func(p *pipeline.Plan, _ *sim.System) {
			p.Meta.Stages = 0
		}},
		{"stage-device-mismatch", func(p *pipeline.Plan, _ *sim.System) {
			p.Meta.StageDevice = append([]sim.DeviceID(nil), p.Meta.StageDevice...)
			p.Meta.StageDevice[0], p.Meta.StageDevice[1] = p.Meta.StageDevice[1], p.Meta.StageDevice[0]
		}},
		{"missing-order", func(p *pipeline.Plan, _ *sim.System) {
			p.Sim.Order = nil
			p.Sim.Policy = sim.PolicyFIFO
		}},
		{"forwards-out-of-order", func(p *pipeline.Plan, _ *sim.System) {
			// Swap the first two forwards in stage 0's lane: both
			// depend only on host-side sources, so the execution stays
			// valid while the ascending-microbatch rule breaks.
			d := p.Meta.StageDevice[0]
			lane := p.Sim.Order[d]
			lane[0], lane[1] = lane[1], lane[0]
		}},
		{"wrong-discipline-claim", func(p *pipeline.Plan, _ *sim.System) {
			// A GPipe fill (4 in flight on stage 0) violates the 1F1B
			// in-flight bound min(S-s, M) = 2.
			p.Meta.Discipline = "1f1b"
		}},
		{"cross-microbatch-edge", func(p *pipeline.Plan, _ *sim.System) {
			p.Meta.MBOf = append([]int(nil), p.Meta.MBOf...)
			for _, id := range p.Sim.Order[p.Meta.StageDevice[0]] {
				if !p.Meta.Backward[id] && p.Meta.MBOf[id] == 0 {
					p.Meta.MBOf[id] = 1
					return
				}
			}
		}},
		{"memory-over-capacity", func(p *pipeline.Plan, _ *sim.System) {
			p.Meta.StageWeightBytes = append([]int64(nil), p.Meta.StageWeightBytes...)
			p.Meta.StageWeightBytes[0] = sweepGPUMem + 1
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, sys := buildPipelinePlan(t)
			c.corrupt(p, &sys)
			_, err := verify.CheckPipeline(p.Graph, sys, p.Sim, p.Meta)
			if err == nil {
				t.Fatal("corrupted pipeline accepted")
			}
			if !errors.Is(err, verify.ErrPipeline) {
				t.Fatalf("rejection %v does not wrap ErrPipeline", err)
			}
			if !errors.Is(err, verify.ErrInvariant) {
				t.Fatalf("rejection %v does not wrap ErrInvariant", err)
			}
		})
	}
}

// TestCheckPipelineMemoryWrapsErrMemory: the capacity rejection carries
// both sentinels so callers can route it like any other memory error.
func TestCheckPipelineMemoryWrapsErrMemory(t *testing.T) {
	p, sys := buildPipelinePlan(t)
	p.Meta.StageWeightBytes = append([]int64(nil), p.Meta.StageWeightBytes...)
	p.Meta.StageWeightBytes[1] = sweepGPUMem + 1
	_, err := verify.CheckPipeline(p.Graph, sys, p.Sim, p.Meta)
	if !errors.Is(err, verify.ErrPipeline) || !errors.Is(err, verify.ErrMemory) {
		t.Fatalf("memory rejection %v must wrap both ErrPipeline and ErrMemory", err)
	}
}

// TestSweepPipeline drives the pipeline planner over a population of
// seeded pipeline-friendly DAGs and holds it to two oracles:
//
//   - every (partition, schedule) plan the search emits passes the
//     independent pipeline invariant checker, and the score it reports
//     matches the verified re-simulation;
//   - on small instances the contiguous-split DP realizes exactly the
//     exhaustive splitter's bottleneck objective for every device
//     count and backward ratio (the DP is exact, not a heuristic).
//
// Like TestSweep, the population scales with PESTO_SWEEP.
func TestSweepPipeline(t *testing.T) {
	n := sweepSize(t)/6 + 4
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			t.Parallel()
			g, err := gen.Generate(gen.PipelineConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			sys := sim.NewSystem(4, sweepGPUMem)
			out, err := pipeline.Search(context.Background(), g, sys, pipeline.Options{Microbatches: 4})
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			res, err := verify.CheckPipeline(out.Plan.Graph, sys, out.Plan.Sim, out.Plan.Meta)
			if err != nil {
				t.Fatalf("winning plan fails CheckPipeline: %v", err)
			}
			if res.Makespan != out.Score.Makespan {
				t.Fatalf("reported step %v != verified %v", out.Score.Makespan, res.Makespan)
			}
			// Differential: DP vs exhaustive on a shrunken sibling.
			cfg := gen.PipelineConfig(seed)
			cfg.Nodes = 8 + int(seed%7)
			small, err := gen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gpus := sys.GPUs()
			for S := 1; S <= len(gpus); S++ {
				for _, ratio := range []float64{-1, 2} {
					dp, dpErr := pipeline.PartitionDP(small, sys, gpus[:S], ratio)
					ex, exErr := pipeline.PartitionExhaustive(small, sys, gpus[:S], ratio)
					if (dpErr == nil) != (exErr == nil) {
						t.Fatalf("S=%d ratio=%g: DP err %v, exhaustive err %v", S, ratio, dpErr, exErr)
					}
					if dpErr != nil {
						continue
					}
					if dp.Bottleneck != ex.Bottleneck {
						t.Fatalf("S=%d ratio=%g: DP bottleneck %v != exhaustive %v",
							S, ratio, dp.Bottleneck, ex.Bottleneck)
					}
				}
			}
		})
	}
}

// TestSweepPipelineSchedules re-verifies both disciplines (not just the
// winner) for a handful of seeds: GPipe and 1F1B plans for the same
// partition must each pass their own discipline checks.
func TestSweepPipelineSchedules(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := gen.Generate(gen.PipelineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(3, sweepGPUMem)
		part, err := pipeline.PartitionDP(g, sys, sys.GPUs(), 2)
		if err != nil {
			t.Fatalf("seed %d: PartitionDP: %v", seed, err)
		}
		for _, kind := range []pipeline.ScheduleKind{pipeline.ScheduleGPipe, pipeline.Schedule1F1B} {
			p, err := pipeline.Build(part, sys, 6, 2, kind)
			if err != nil {
				t.Fatalf("seed %d kind %v: Build: %v", seed, kind, err)
			}
			if _, err := verify.CheckPipeline(p.Graph, sys, p.Sim, p.Meta); err != nil {
				t.Fatalf("seed %d kind %v: CheckPipeline: %v", seed, kind, err)
			}
		}
	}
}
