package fleet

import (
	"sync"
	"time"
)

// Breaker states, exported as the pestod_fleet_breaker_state gauge
// (closed=0, half-open=1, open=2 — higher is worse).
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breakerConfig sizes one passive circuit breaker.
type breakerConfig struct {
	// window is the rolling observation window; counts reset when it
	// elapses.
	window time.Duration
	// minSamples is the minimum observations in a window before the
	// failure fraction is believed (a single failed request must not
	// open a breaker).
	minSamples int
	// failFrac opens the breaker when failures/total reaches it.
	failFrac float64
	// cooldown is how long an open breaker blocks before letting one
	// half-open probe through.
	cooldown time.Duration
}

// breaker is a passive per-replica circuit breaker: it watches the
// error rate of real traffic (the prober is the *active* side) and
// sheds a replica that fails too much of its window, then re-admits it
// through a single half-open trial request. Every method takes the
// current time explicitly, so tests — and the virtual-clock chaos
// harness — drive it without sleeping.
type breaker struct {
	mu          sync.Mutex
	cfg         breakerConfig
	state       int
	fail, total int
	windowStart time.Time
	openedAt    time.Time
	probing     bool
}

func newBreaker(cfg breakerConfig) *breaker { return &breaker{cfg: cfg} }

// allow reports whether a request may be sent through this breaker at
// time now. In the open state it returns false until cooldown passes,
// then transitions to half-open and admits exactly one probe; further
// requests wait for that probe's verdict.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one request outcome observed at time now. ok means the
// replica answered coherently — transport success and no 5xx (an
// admission-control 429 is a healthy replica saying "later", not a
// failure).
func (b *breaker) record(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.fail, b.total = 0, 0
			b.windowStart = now
		} else {
			b.state = breakerOpen
			b.openedAt = now
		}
		return
	}
	if b.state == breakerOpen {
		return
	}
	if b.windowStart.IsZero() || now.Sub(b.windowStart) >= b.cfg.window {
		b.fail, b.total = 0, 0
		b.windowStart = now
	}
	b.total++
	if !ok {
		b.fail++
	}
	if b.total >= b.cfg.minSamples && float64(b.fail) >= b.cfg.failFrac*float64(b.total) {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// current reports the state for metrics and health output.
func (b *breaker) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerStateName renders a state for the health endpoint.
func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
