package fleet

import (
	"testing"
	"time"
)

func testBreaker() *breaker {
	return newBreaker(breakerConfig{
		window:     5 * time.Second,
		minSamples: 4,
		failFrac:   0.5,
		cooldown:   2 * time.Second,
	})
}

func TestBreakerOpensOnErrorRate(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	// Three failures are below minSamples: still closed.
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatal("closed breaker refused a request")
		}
		b.record(now, false)
	}
	if b.current() != breakerClosed {
		t.Fatal("breaker opened below minSamples")
	}
	b.record(now, false) // 4th failure: 4/4 over threshold
	if b.current() != breakerOpen {
		t.Fatal("breaker stayed closed past the failure threshold")
	}
	if b.allow(now.Add(time.Second)) {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.record(now, false)
	}
	after := now.Add(3 * time.Second) // past cooldown
	if !b.allow(after) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.current() != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.current())
	}
	// Only one probe at a time.
	if b.allow(after) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.record(after, true)
	if b.current() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.allow(after) {
		t.Fatal("closed breaker refused a request after recovery")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.record(now, false)
	}
	after := now.Add(3 * time.Second)
	if !b.allow(after) {
		t.Fatal("no half-open probe")
	}
	b.record(after, false)
	if b.current() != breakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// The cooldown restarts from the failed probe.
	if b.allow(after.Add(time.Second)) {
		t.Fatal("reopened breaker admitted a request inside the fresh cooldown")
	}
	if !b.allow(after.Add(3 * time.Second)) {
		t.Fatal("reopened breaker never re-admitted")
	}
}

func TestBreakerWindowReset(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	// Three failures, then the window rolls over: old counts are gone,
	// so three more failures in the new window still stay under
	// minSamples+threshold until the 4th.
	for i := 0; i < 3; i++ {
		b.record(now, false)
	}
	later := now.Add(6 * time.Second)
	for i := 0; i < 3; i++ {
		b.record(later, false)
	}
	if b.current() != breakerClosed {
		t.Fatal("stale window counts leaked into the new window")
	}
}

func TestBreakerHealthyTrafficStaysClosed(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		ok := i%5 != 0 // 20% failures, under the 50% threshold
		b.record(now.Add(time.Duration(i)*time.Millisecond), ok)
	}
	if b.current() != breakerClosed {
		t.Fatal("breaker opened under sub-threshold error rate")
	}
}

func TestLatencyTrackerP95(t *testing.T) {
	var lt latencyTracker
	min, max := 10*time.Millisecond, time.Second
	// Cold tracker: no evidence, hedge waits the max.
	if got := lt.p95(min, max); got != max {
		t.Fatalf("cold p95 = %v, want %v", got, max)
	}
	for i := 0; i < 100; i++ {
		lt.observe(time.Duration(i+1) * time.Millisecond)
	}
	got := lt.p95(min, max)
	if got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v, want ~95ms", got)
	}
	// Clamping: a uniformly fast window clamps up to min.
	var fast latencyTracker
	for i := 0; i < 50; i++ {
		fast.observe(time.Microsecond)
	}
	if got := fast.p95(min, max); got != min {
		t.Fatalf("fast p95 = %v, want clamp to %v", got, min)
	}
}
