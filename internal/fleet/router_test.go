package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pesto/internal/fault"
	"pesto/internal/gen"
	"pesto/internal/service"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeBackend scripts a replica for unit tests.
type fakeBackend struct {
	id string
	fn func(ctx context.Context, method, path string, body []byte) (*Response, error)
}

func (f *fakeBackend) ID() string { return f.id }
func (f *fakeBackend) Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	return f.fn(ctx, method, path, body)
}

func ok200(body string) *Response {
	return &Response{Status: http.StatusOK, Header: make(http.Header), Body: []byte(body)}
}

// fastServiceConfig keeps replica solves on the heuristic rung.
func fastServiceConfig() service.Config {
	return service.Config{Parallel: 1, DefaultBudget: 50 * time.Millisecond, MaxBudget: time.Second}
}

// newServiceFleet builds n in-process pestod replicas behind a router.
func newServiceFleet(t *testing.T, n int, cfg Config) (*Router, []*service.Server) {
	t.Helper()
	servers := make([]*service.Server, n)
	backends := make([]Backend, n)
	for i := range servers {
		s := service.New(fastServiceConfig())
		servers[i] = s
		backends[i] = NewHandlerBackend(fmt.Sprintf("r%d", i), s)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Drain(ctx)
		})
	}
	rt, err := New(cfg, backends...)
	if err != nil {
		t.Fatal(err)
	}
	return rt, servers
}

// placeBody builds one /v1/place body plus its graph fingerprint.
func placeBody(t *testing.T, seed int64) ([]byte, [32]byte) {
	t.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: seed, Nodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.PlaceRequest{Graph: g, Options: service.RequestOptions{BudgetMs: 50}})
	if err != nil {
		t.Fatal(err)
	}
	return body, g.Fingerprint()
}

// bodyOwnedBy searches seeds until the generated graph's ring owner is
// the wanted replica index.
func bodyOwnedBy(t *testing.T, rt *Router, owner int) ([]byte, [32]byte) {
	t.Helper()
	for seed := int64(0); seed < 500; seed++ {
		body, fp := placeBody(t, seed)
		if rt.ring.successors(service.RingPoint(fp))[0] == owner {
			return body, fp
		}
	}
	t.Fatalf("no seed in 500 maps to replica %d", owner)
	return nil, [32]byte{}
}

func postJSON(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRouterRoutesByOwnerAndCaches(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	for seed := int64(1); seed <= 6; seed++ {
		body, fp := placeBody(t, seed)
		wantOwner := fmt.Sprintf("r%d", rt.ring.successors(service.RingPoint(fp))[0])
		first := postJSON(t, rt, "/v1/place", body)
		if first.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, first.Code, first.Body.Bytes())
		}
		if got := first.Header().Get("X-Pesto-Replica"); got != wantOwner {
			t.Fatalf("seed %d routed to %s, ring owner is %s", seed, got, wantOwner)
		}
		if first.Header().Get("X-Pesto-Cache") != "miss" {
			t.Fatalf("seed %d: first request was not a miss", seed)
		}
		second := postJSON(t, rt, "/v1/place", body)
		if second.Header().Get("X-Pesto-Cache") != "hit" {
			t.Fatalf("seed %d: repeat request missed the cache", seed)
		}
		if got := second.Header().Get("X-Pesto-Replica"); got != wantOwner {
			t.Fatalf("seed %d: repeat request moved to %s", seed, got)
		}
		if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
			t.Fatalf("seed %d: hit body differs from miss body", seed)
		}
	}
}

func TestRouterFailoverOnDeadReplica(t *testing.T) {
	rt, servers := newServiceFleet(t, 3, Config{DisableHedge: true})
	_ = servers
	// Replace replica 1's backend with a dead one, after ring
	// construction (the ring keeps its arcs; the router must fail over).
	dead := &fakeBackend{id: "r1", fn: func(ctx context.Context, method, path string, body []byte) (*Response, error) {
		return nil, ErrReplicaDown
	}}
	rt.reps[1].b = dead
	body, fp := bodyOwnedBy(t, rt, 1)
	w := postJSON(t, rt, "/v1/place", body)
	if w.Code != http.StatusOK {
		t.Fatalf("request owned by dead replica failed: %d %s", w.Code, w.Body.Bytes())
	}
	served := w.Header().Get("X-Pesto-Replica")
	wantNext := fmt.Sprintf("r%d", rt.ring.successors(service.RingPoint(fp))[1])
	if served != wantNext {
		t.Fatalf("failover served by %s, want next successor %s", served, wantNext)
	}
	if _, _, failovers, _ := rt.Stats(); failovers == 0 {
		t.Fatal("failover not counted")
	}
}

func TestRouterRetryAfterHonored(t *testing.T) {
	for _, tc := range []struct {
		name   string
		header bool
	}{
		{"header", true},
		{"body-only", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			be := &fakeBackend{id: "solo", fn: func(ctx context.Context, method, path string, body []byte) (*Response, error) {
				if calls.Add(1) == 1 {
					h := make(http.Header)
					if tc.header {
						h.Set("Retry-After", "2")
					}
					return &Response{Status: http.StatusTooManyRequests, Header: h,
						Body: []byte(`{"error":"saturated","retryAfterSec":2}`)}, nil
				}
				return ok200(`{"plan":true}`), nil
			}}
			var mu sync.Mutex
			var sleeps []time.Duration
			cfg := Config{
				DisableHedge: true,
				Sleep: func(ctx context.Context, d time.Duration) error {
					mu.Lock()
					sleeps = append(sleeps, d)
					mu.Unlock()
					return nil
				},
			}
			rt, err := New(cfg, be)
			if err != nil {
				t.Fatal(err)
			}
			_, fp := placeBody(t, 1)
			resp, err := rt.Do(context.Background(), http.MethodPost, "/v1/place", nil, fp)
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			if resp.Status != http.StatusOK {
				t.Fatalf("status %d", resp.Status)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(sleeps) != 1 {
				t.Fatalf("slept %d times, want 1 (between passes)", len(sleeps))
			}
			if sleeps[0] < 2*time.Second {
				t.Fatalf("slept %v, want >= the replica's Retry-After of 2s", sleeps[0])
			}
			if retries, _, _, _ := rt.Stats(); retries != 1 {
				t.Fatalf("retries = %d, want 1", retries)
			}
		})
	}
}

// TestBackoffJitterDeterministic holds the replay contract: backoff is
// a pure function of (seed, fingerprint, pass) within [d/2, d).
func TestBackoffJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *Router {
		rt, err := New(Config{Seed: seed, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second},
			&fakeBackend{id: "a", fn: nil})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b, c := mk(7), mk(7), mk(8)
	differ := false
	for i := 0; i < 16; i++ {
		_, fp := placeBody(t, int64(i))
		for pass := 0; pass < 3; pass++ {
			da, db, dc := a.backoff(pass, fp), b.backoff(pass, fp), c.backoff(pass, fp)
			if da != db {
				t.Fatalf("same seed diverged: %v vs %v", da, db)
			}
			if da != dc {
				differ = true
			}
			base := 100 * time.Millisecond << uint(pass)
			if base > time.Second {
				base = time.Second
			}
			if da < base/2 || da >= base {
				t.Fatalf("backoff %v outside [%v, %v)", da, base/2, base)
			}
		}
	}
	if !differ {
		t.Fatal("different seeds never changed the jitter")
	}
}

func TestRouterHedgesSlowReplica(t *testing.T) {
	slowBody := ok200(`{"who":"slow"}`)
	fastBody := ok200(`{"who":"fast"}`)
	mk := func(id string, slow bool) *fakeBackend {
		return &fakeBackend{id: id, fn: func(ctx context.Context, method, path string, body []byte) (*Response, error) {
			if slow {
				select {
				case <-time.After(500 * time.Millisecond):
					return slowBody, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return fastBody, nil
		}}
	}
	rt, err := New(Config{HedgeMin: 20 * time.Millisecond, HedgeMax: 20 * time.Millisecond},
		mk("a", false), mk("b", false))
	if err != nil {
		t.Fatal(err)
	}
	// Find a fingerprint owned by replica 0 and make that replica slow.
	_, fp := bodyOwnedBy(t, rt, 0)
	rt.reps[0].b = mk("a", true)
	resp, err := rt.Do(context.Background(), http.MethodPost, "/v1/place", nil, fp)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	var who struct{ Who string }
	if err := json.Unmarshal(resp.Body, &who); err != nil || who.Who != "fast" {
		t.Fatalf("served by %q, want the hedge target (err %v)", who.Who, err)
	}
	if _, hedges, _, _ := rt.Stats(); hedges != 1 {
		t.Fatalf("hedges = %d, want 1", hedges)
	}
}

// TestRouterLastResortIgnoresGates: when detection says everything is
// down but a replica actually works (probe blackhole), requests still
// get through via the gate-free last-resort sweep.
func TestRouterLastResortIgnoresGates(t *testing.T) {
	be := &fakeBackend{id: "solo", fn: func(ctx context.Context, method, path string, body []byte) (*Response, error) {
		if method == http.MethodGet && path == "/healthz" {
			return nil, ErrReplicaDown // probes blackholed
		}
		return ok200(`{}`), nil
	}}
	rt, err := New(Config{DisableHedge: true, ProbeFailures: 1, Passes: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll(context.Background())
	if rt.reps[0].isUp() {
		t.Fatal("blackholed probe did not mark replica down")
	}
	_, fp := placeBody(t, 3)
	resp, err := rt.Do(context.Background(), http.MethodPost, "/v1/place", nil, fp)
	if err != nil {
		t.Fatalf("request failed with all replicas marked down but alive: %v", err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status %d", resp.Status)
	}
}

func TestBatchDedupesAndFansOut(t *testing.T) {
	rt, servers := newServiceFleet(t, 3, Config{DisableHedge: true})
	b1, _ := placeBody(t, 11)
	b2, _ := placeBody(t, 12)
	b3, _ := placeBody(t, 13)
	batch := BatchRequest{Requests: []json.RawMessage{b1, b2, b1, b3, b2, b1, []byte(`{}`)}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, rt, "/v1/place/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.Bytes())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 7 {
		t.Fatalf("got %d results, want 7", len(resp.Results))
	}
	for i := 0; i < 6; i++ {
		if resp.Results[i].Status != http.StatusOK {
			t.Fatalf("entry %d status %d: %s", i, resp.Results[i].Status, resp.Results[i].Body)
		}
	}
	if resp.Results[6].Status != http.StatusBadRequest {
		t.Fatalf("malformed entry got %d, want 400", resp.Results[6].Status)
	}
	// Duplicates share one solve: byte-identical bodies...
	if !bytes.Equal(resp.Results[0].Body, resp.Results[2].Body) || !bytes.Equal(resp.Results[0].Body, resp.Results[5].Body) {
		t.Fatal("duplicate entries returned different bodies")
	}
	if !bytes.Equal(resp.Results[1].Body, resp.Results[4].Body) {
		t.Fatal("duplicate entries returned different bodies")
	}
	// ...and the fleet solved each unique graph exactly once.
	var fills int64
	for _, s := range servers {
		f, _, _ := s.CacheStats()
		fills += f
	}
	if fills != 3 {
		t.Fatalf("fleet ran %d fills for 3 unique graphs", fills)
	}
}

// TestWarmSyncOnRejoin drives a kill/restart cycle on a virtual clock:
// a replica dies, its keys fail over, and the cold restarted replica
// is warm-synced from its peer before taking traffic — so its first
// request is already a byte-for-byte cache hit.
func TestWarmSyncOnRejoin(t *testing.T) {
	var clockNs atomic.Int64
	clock := func() time.Duration { return time.Duration(clockNs.Load()) }
	spec, err := fault.ParseFleetSpec("rkill:r1@1s,restart=1s")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewFleet(spec)

	s0 := service.New(fastServiceConfig())
	s1 := service.New(fastServiceConfig())
	chaos := NewChaosBackend(NewHandlerBackend("r1", s1), inj, clock)
	rt, err := New(Config{DisableHedge: true, ProbeFailures: 1, Passes: 2,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil }},
		NewHandlerBackend("r0", s0), chaos)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1 (t=0): traffic flows to both replicas.
	body1, fp1 := bodyOwnedBy(t, rt, 1)
	if w := postJSON(t, rt, "/v1/place", body1); w.Code != http.StatusOK || w.Header().Get("X-Pesto-Replica") != "r1" {
		t.Fatalf("phase 1: %d served by %s", w.Code, w.Header().Get("X-Pesto-Replica"))
	}
	wantBody := postJSON(t, rt, "/v1/place", body1).Body.Bytes()

	// Phase 2 (t=1.5s): r1 is dead; its keys fail over to r0 and get
	// re-solved there.
	clockNs.Store(int64(1500 * time.Millisecond))
	rt.ProbeAll(ctx)
	if rt.reps[1].isUp() {
		t.Fatal("killed replica still marked up after failed probe")
	}
	w := postJSON(t, rt, "/v1/place", body1)
	if w.Code != http.StatusOK || w.Header().Get("X-Pesto-Replica") != "r0" {
		t.Fatalf("outage request: %d served by %s", w.Code, w.Header().Get("X-Pesto-Replica"))
	}
	if !bytes.Equal(w.Body.Bytes(), wantBody) {
		t.Fatal("failover answer differs from the pre-kill answer")
	}

	// Phase 3 (t=2.5s): r1 restarts cold (fresh server, empty cache).
	// The next probe warm-syncs its keyspace from r0 before marking up.
	s1b := service.New(fastServiceConfig())
	chaos.Replace(NewHandlerBackend("r1", s1b))
	clockNs.Store(int64(2500 * time.Millisecond))
	rt.ProbeAll(ctx)
	if !rt.reps[1].isUp() {
		t.Fatal("restarted replica not marked up after healthy probe")
	}
	_, _, _, warmKeys := rt.Stats()
	if warmKeys == 0 {
		t.Fatal("rejoin installed no warm-sync keys")
	}
	// The rejoined replica serves its key as a hit without solving.
	w = postJSON(t, rt, "/v1/place", body1)
	if w.Code != http.StatusOK || w.Header().Get("X-Pesto-Replica") != "r1" {
		t.Fatalf("post-rejoin request: %d served by %s", w.Code, w.Header().Get("X-Pesto-Replica"))
	}
	if w.Header().Get("X-Pesto-Cache") != "hit" {
		t.Fatal("post-rejoin request missed: warm-sync did not land")
	}
	if !bytes.Equal(w.Body.Bytes(), wantBody) {
		t.Fatal("post-rejoin answer differs byte-for-byte")
	}
	if fills, _, _ := s1b.CacheStats(); fills != 0 {
		t.Fatalf("restarted replica ran %d fills; warm-sync should have covered it", fills)
	}
	_ = fp1
}

func TestFleetHealthEndpoint(t *testing.T) {
	be0 := &fakeBackend{id: "r0", fn: func(ctx context.Context, m, p string, b []byte) (*Response, error) { return ok200(`{}`), nil }}
	be1 := &fakeBackend{id: "r1", fn: func(ctx context.Context, m, p string, b []byte) (*Response, error) { return nil, ErrReplicaDown }}
	rt, err := New(Config{ProbeFailures: 1}, be0, be1)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded fleet health = %d, want 200", w.Code)
	}
	var h struct {
		Status   string
		Replicas []struct {
			ID      string
			Up      bool
			Breaker string
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || len(h.Replicas) != 2 {
		t.Fatalf("health %+v", h)
	}
}

// TestFleetMetricsGoldenIdle pins the idle scrape of a 3-replica
// router byte-for-byte. Regenerate with -update.
func TestFleetMetricsGoldenIdle(t *testing.T) {
	mkOK := func(id string) *fakeBackend {
		return &fakeBackend{id: id, fn: func(ctx context.Context, m, p string, b []byte) (*Response, error) { return ok200(`{}`), nil }}
	}
	rt, err := New(Config{}, mkOK("r0"), mkOK("r1"), mkOK("r2"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rt.met.write(&buf)
	golden := filepath.Join("testdata", "fleet_metrics_idle.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("idle fleet metrics changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	var again bytes.Buffer
	rt.met.write(&again)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("consecutive idle writes differ")
	}
}
