package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pesto/internal/fault"
	"pesto/internal/gen"
	"pesto/internal/obs"
	"pesto/internal/service"
)

// The chaos schedule: two replica kills with restarts (r1 and r2 each
// die for 10 virtual seconds) plus a probe blackhole on r0 (detection
// says down, traffic says fine). Everything is a pure function of
// (chaosSpec, chaosSeed, request count) — a CI failure replays exactly
// from the values it prints.
const (
	chaosSpec = "rkill:r1@10s,restart=10s;rkill:r2@35s,restart=10s;probehole:r0@20s,dur=5s"
	chaosSeed = 20260807
	chaosSpan = 60 * time.Second
	// Window boundaries for the hit-rate-recovery assertion: before the
	// first kill vs after the last rejoin.
	preKillEnd      = 10 * time.Second
	postRejoinStart = 47 * time.Second
)

// chaosStats is one chaos run's outcome.
type chaosStats struct {
	requests, failed           int
	hits, misses               int
	preHits, preTotal          int
	postHits, postTotal        int
	retries, hedges, failovers int64
	warmKeys                   int64
	latencies                  []time.Duration
	elapsed                    time.Duration
	// Per-trace tallies rebuilt from the router's hop records; the
	// test asserts they equal the router's own counters, tying every
	// retry/hedge/failover the metrics claim to a span in a trace.
	traceMaxPass   int64 // Σ over traces of the highest hop pass
	traceHedgeHops int64 // hops recorded with kind "hedge"
	traceFailovers int64 // traces whose served hop is not the ring owner
	stitched       int   // stitched Chrome traces fetched and sanity-checked
}

func (s chaosStats) hitRate(hits, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// runChaos drives `requests` Zipf-distributed placement requests
// through a 3-replica fleet on a virtual clock while the fault
// schedule kills, restarts and blinds replicas, comparing every
// response byte-for-byte against a single-replica oracle.
func runChaos(t *testing.T, requests int) chaosStats {
	t.Helper()
	t.Logf("chaos replay: spec=%q seed=%d requests=%d", chaosSpec, chaosSeed, requests)

	spec, err := fault.ParseFleetSpec(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewFleet(spec)

	// Workload: a Zipf-skewed trace over a small corpus of generated
	// graphs, bodies and fingerprints precomputed so the drive loop
	// measures serving, not JSON encoding.
	tr, err := gen.NewTrace(gen.TraceConfig{Corpus: 24, Requests: requests, Seed: chaosSeed, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, len(tr.Configs))
	fps := make([][32]byte, len(tr.Configs))
	for i, cfg := range tr.Configs {
		g, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], err = json.Marshal(service.PlaceRequest{Graph: g, Options: service.RequestOptions{BudgetMs: 50}})
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = g.Fingerprint()
	}

	// Oracle: one replica, no faults. Its answers are the ground truth
	// the fleet must reproduce byte-for-byte through every failover.
	ctx := context.Background()
	oracleSrv := service.New(fastServiceConfig())
	defer oracleSrv.Drain(ctx)
	oracle := NewHandlerBackend("oracle", oracleSrv)
	want := make([][]byte, len(bodies))
	for i := range bodies {
		resp, err := oracle.Do(ctx, http.MethodPost, "/v1/place", nil, bodies[i])
		if err != nil || resp.Status != http.StatusOK {
			t.Fatalf("oracle solve %d: %v (status %d)", i, err, resp.Status)
		}
		want[i] = resp.Body
	}

	// The fleet: three replicas under chaos wrappers sharing one
	// virtual clock; the router runs on the same clock so breakers and
	// probes see chaos time.
	var clockNs atomic.Int64
	vclock := func() time.Duration { return time.Duration(clockNs.Load()) }
	ids := []string{"r0", "r1", "r2"}
	servers := make([]*service.Server, len(ids))
	chaosBk := make([]*ChaosBackend, len(ids))
	backends := make([]Backend, len(ids))
	for i, id := range ids {
		servers[i] = service.New(fastServiceConfig())
		chaosBk[i] = NewChaosBackend(NewHandlerBackend(id, servers[i]), inj, vclock)
		backends[i] = chaosBk[i]
	}
	defer func() {
		for _, s := range servers {
			s.Drain(ctx)
		}
	}()
	rt, err := New(Config{
		DisableHedge:  true, // keep request counts exact for the oracle comparison
		ProbeFailures: 1,
		Passes:        3,
		Seed:          chaosSeed,
		Clock:         func() time.Time { return time.Unix(0, clockNs.Load()) },
		Sleep:         func(ctx context.Context, d time.Duration) error { return nil },
	}, backends...)
	if err != nil {
		t.Fatal(err)
	}

	// Drive. Probe rounds interleave every probeEvery requests (~120
	// rounds across the schedule); a restart is modeled as a *fresh*
	// server swapped in — empty cache — so the post-rejoin hit rate is
	// earned by warm-sync, not by surviving state.
	stats := chaosStats{requests: requests}
	wasKilled := make([]bool, len(ids))
	probeEvery := requests / 120
	if probeEvery < 1 {
		probeEvery = 1
	}
	// Every stitchEvery-th successful request also pulls its stitched
	// cross-replica Chrome trace through the router's HTTP surface.
	stitchEvery := requests / 50
	if stitchEvery < 1 {
		stitchEvery = 1
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		vt := chaosSpan * time.Duration(i) / time.Duration(requests)
		clockNs.Store(int64(vt))
		if i%probeEvery == 0 {
			for r, id := range ids {
				killed := inj.Killed(id, vt)
				if wasKilled[r] && !killed {
					servers[r] = service.New(fastServiceConfig())
					chaosBk[r].Replace(NewHandlerBackend(id, servers[r]))
				}
				wasKilled[r] = killed
			}
			rt.ProbeAll(ctx)
		}
		rank := tr.Seq[i]
		traceID := fmt.Sprintf("req-%06d", i)
		reqStart := time.Now()
		resp, _, err := rt.DoTraced(ctx, http.MethodPost, "/v1/place", bodies[rank], fps[rank],
			obs.TraceContext{TraceID: traceID})
		stats.latencies = append(stats.latencies, time.Since(reqStart))
		if err != nil || resp.Status != http.StatusOK {
			stats.failed++
			if stats.failed <= 5 {
				t.Errorf("request %d (vt %v, rank %d) failed: err=%v status=%v", i, vt, rank, err, respStatus(resp))
			}
			continue
		}
		if string(resp.Body) != string(want[rank]) {
			stats.failed++
			if stats.failed <= 5 {
				t.Errorf("request %d (rank %d): fleet answer differs from oracle", i, rank)
			}
			continue
		}
		checkTrace(t, rt, &stats, traceID, i, resp.Header.Get("X-Pesto-Replica"), stitchEvery)
		hit := resp.Header.Get("X-Pesto-Cache") == "hit"
		if hit {
			stats.hits++
		} else {
			stats.misses++
		}
		switch {
		case vt < preKillEnd:
			stats.preTotal++
			if hit {
				stats.preHits++
			}
		case vt >= postRejoinStart:
			stats.postTotal++
			if hit {
				stats.postHits++
			}
		}
	}
	stats.elapsed = time.Since(start)
	stats.retries, stats.hedges, stats.failovers, stats.warmKeys = rt.Stats()
	return stats
}

// checkTrace audits the router's hop record of one successful chaos
// request: the trace must exist, carry at least one hop, and mark
// exactly one hop served — the replica named in the response's
// X-Pesto-Replica header. It folds the trace's pass/hedge/failover
// evidence into stats for the whole-run identity checks, and every
// stitchEvery-th request fetches the stitched Chrome trace too.
func checkTrace(t *testing.T, rt *Router, stats *chaosStats, traceID string, i int, servedReplica string, stitchEvery int) {
	t.Helper()
	rec, ok := rt.Trace(traceID)
	if !ok {
		t.Fatalf("request %d: no trace retained for %s", i, traceID)
	}
	if len(rec.Hops) == 0 {
		t.Fatalf("request %d: trace %s has no hops", i, traceID)
	}
	maxPass, served := 0, 0
	for _, h := range rec.Hops {
		if h.Pass > maxPass {
			maxPass = h.Pass
		}
		if h.Kind == "hedge" {
			stats.traceHedgeHops++
		}
		if h.Served {
			served++
			if h.Replica != servedReplica {
				t.Fatalf("request %d: served hop names replica %s, response header says %s", i, h.Replica, servedReplica)
			}
			if h.Replica != rec.Owner {
				stats.traceFailovers++
			}
		}
	}
	if served != 1 {
		t.Fatalf("request %d: trace %s marks %d hops served, want exactly 1", i, traceID, served)
	}
	stats.traceMaxPass += int64(maxPass)
	if i%stitchEvery != 0 {
		return
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/requests/"+traceID+"/trace", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("request %d: stitched trace fetch for %s: status %d: %s", i, traceID, w.Code, w.Body.String())
	}
	body := w.Body.String()
	if !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, "fleet router") {
		t.Fatalf("request %d: stitched trace for %s lacks router lane: %.200s", i, traceID, body)
	}
	stats.stitched++
}

func respStatus(r *Response) int {
	if r == nil {
		return 0
	}
	return r.Status
}

// TestFleetChaosDeterministicZeroFailures is the fleet's core
// robustness claim, sized for CI (override with PESTO_CHAOS_REQUESTS):
// across two kills, two cold rejoins and a probe blackhole, no request
// fails, every plan matches the single-replica oracle byte-for-byte,
// and the post-rejoin cache hit rate recovers to >=90% of the
// pre-kill rate. The "Determin" name places it in the GOMAXPROCS CI
// matrix: the guarantees hold at any parallelism.
func TestFleetChaosDeterministicZeroFailures(t *testing.T) {
	requests := 2000
	if v := os.Getenv("PESTO_CHAOS_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 {
			t.Fatalf("PESTO_CHAOS_REQUESTS=%q invalid", v)
		}
		requests = n
	}
	stats := runChaos(t, requests)
	if stats.failed != 0 {
		t.Fatalf("%d of %d requests failed (replay: spec=%q seed=%d requests=%d)",
			stats.failed, stats.requests, chaosSpec, chaosSeed, requests)
	}
	if stats.failovers == 0 {
		t.Fatal("chaos run saw no failovers: the schedule did not exercise the fleet")
	}
	// Hop accounting: the router's counters must be fully explained by
	// the hop spans in the per-request traces. With every request
	// succeeding, retries == Σ max hop pass; hedging is disabled, so
	// both views must report zero; failovers == traces served off-owner.
	if stats.retries != stats.traceMaxPass {
		t.Fatalf("router counted %d retries but traces account for %d extra passes", stats.retries, stats.traceMaxPass)
	}
	if stats.hedges != 0 || stats.traceHedgeHops != 0 {
		t.Fatalf("hedging disabled but router counted %d hedges, traces recorded %d hedge hops", stats.hedges, stats.traceHedgeHops)
	}
	if stats.failovers != stats.traceFailovers {
		t.Fatalf("router counted %d failovers but traces show %d off-owner serves", stats.failovers, stats.traceFailovers)
	}
	if stats.stitched == 0 {
		t.Fatal("no stitched traces fetched")
	}
	if stats.warmKeys == 0 {
		t.Fatal("no warm-sync keys installed: rejoin path not exercised")
	}
	pre := stats.hitRate(stats.preHits, stats.preTotal)
	post := stats.hitRate(stats.postHits, stats.postTotal)
	if stats.preTotal == 0 || stats.postTotal == 0 {
		t.Fatalf("empty measurement window: pre %d, post %d", stats.preTotal, stats.postTotal)
	}
	if post < 0.9*pre {
		t.Fatalf("hit rate did not recover: pre-kill %.3f, post-rejoin %.3f (want >= 90%%)", pre, post)
	}
	t.Logf("chaos: %d requests, 0 failed, hit rate pre %.3f post %.3f, %d failovers, %d retries, %d warm-synced keys, %d stitched traces",
		stats.requests, pre, post, stats.failovers, stats.retries, stats.warmKeys, stats.stitched)
}

// TestFleetChaosBench is the committed-benchmark producer: a large
// chaos run (default 100k requests) recording latency percentiles,
// throughput and hit-rate recovery into BENCH_fleet.json at the repo
// root. Wall-clock numbers are machine-dependent, so only
// PESTO_BENCH_FLEET=1 opts in.
func TestFleetChaosBench(t *testing.T) {
	if os.Getenv("PESTO_BENCH_FLEET") == "" {
		t.Skip("set PESTO_BENCH_FLEET=1 to run the fleet chaos benchmark")
	}
	requests := 100000
	if v := os.Getenv("PESTO_CHAOS_REQUESTS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 100 {
			requests = n
		}
	}
	stats := runChaos(t, requests)
	if stats.failed != 0 {
		t.Fatalf("%d requests failed", stats.failed)
	}
	lat := append([]time.Duration(nil), stats.latencies...)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p int) time.Duration { return lat[(len(lat)-1)*p/100] }
	pre := stats.hitRate(stats.preHits, stats.preTotal)
	post := stats.hitRate(stats.postHits, stats.postTotal)
	snapshot := map[string]any{
		"requests":            stats.requests,
		"replicas":            3,
		"corpus":              24,
		"zipf_skew":           1.2,
		"fault_spec":          chaosSpec,
		"seed":                chaosSeed,
		"failed_requests":     stats.failed,
		"p50_us":              pct(50).Microseconds(),
		"p99_us":              pct(99).Microseconds(),
		"throughput_rps":      int64(float64(stats.requests) / stats.elapsed.Seconds()),
		"hit_rate_prekill":    fmt.Sprintf("%.4f", pre),
		"hit_rate_postrejoin": fmt.Sprintf("%.4f", post),
		"failovers":           stats.failovers,
		"retries":             stats.retries,
		"warmsync_keys":       stats.warmKeys,
		"note":                "3 in-process replicas under the chaos schedule (2 kills + cold rejoins, 1 probe blackhole); every response byte-identical to a single-replica oracle; latencies are full router round-trips",
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_fleet.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_fleet.json: p50 %v p99 %v, %.0f rps", pct(50), pct(99), float64(stats.requests)/stats.elapsed.Seconds())
}
