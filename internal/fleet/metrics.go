package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// fleetMetrics instruments the router: counters behind a mutex plus
// per-replica gauges read live at scrape time. Exposition is the same
// hand-rolled Prometheus text format as internal/service, with every
// label set emitted in sorted order so consecutive scrapes of an idle
// router are byte-identical (the golden test holds this).
type fleetMetrics struct {
	mu sync.Mutex
	// requests[endpoint][outcome] counts finished router requests.
	requests map[string]map[string]int64
	// retries counts full failed passes that slept and went around again.
	retries int64
	// hedges counts hedge requests fired; hedgeWins counts hedges whose
	// answer was used.
	hedges, hedgeWins int64
	// failovers counts requests answered by a replica other than the
	// ring owner.
	failovers int64
	// warmsyncKeys counts cache entries installed into rejoining
	// replicas.
	warmsyncKeys int64
	// batch dedup accounting: batchRequests counts batch entries
	// received, batchDeduped counts entries answered by another entry's
	// solve.
	batchRequests, batchDeduped int64
	// hopHist is the per-attempt latency histogram, split by why the
	// hop happened (first | retry | hedge | last-resort). All kinds are
	// pre-registered so an idle scrape is complete and byte-stable.
	hopHist map[string]*hopHistogram

	// replicaStates reads live per-replica liveness and breaker state,
	// sorted by replica ID.
	replicaStates func() []replicaState
}

// replicaState is one replica's scrape-time condition.
type replicaState struct {
	id      string
	up      bool
	breaker int
}

// hopBuckets are the upper bounds (seconds) of the hop-latency
// histogram; one hop is a full replica round trip, so the range matches
// the replicas' own solve histogram.
var hopBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

// hopHistogram is one cumulative-bucket hop-latency histogram.
type hopHistogram struct {
	bucketN [len(hopBuckets) + 1]int64 // + 1 for +Inf
	sum     float64
	count   int64
}

// hopKinds pre-registers every hop kind the router emits.
var hopKinds = [...]string{"first", "retry", "hedge", "last-resort"}

func newFleetMetrics() *fleetMetrics {
	m := &fleetMetrics{
		requests: make(map[string]map[string]int64),
		hopHist:  make(map[string]*hopHistogram),
	}
	for _, k := range hopKinds {
		m.hopHist[k] = &hopHistogram{}
	}
	return m
}

// observeHop records one finished backend attempt of the given kind.
func (m *fleetMetrics) observeHop(kind string, d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hopHist[kind]
	if h == nil {
		h = &hopHistogram{}
		m.hopHist[kind] = h
	}
	idx := len(hopBuckets) // +Inf
	for i, ub := range hopBuckets {
		if s <= ub {
			idx = i
			break
		}
	}
	h.bucketN[idx]++
	h.sum += s
	h.count++
}

func (m *fleetMetrics) request(endpoint, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byOutcome := m.requests[endpoint]
	if byOutcome == nil {
		byOutcome = make(map[string]int64)
		m.requests[endpoint] = byOutcome
	}
	byOutcome[outcome]++
}

func (m *fleetMetrics) addRetry() { m.add(&m.retries, 1) }

func (m *fleetMetrics) addHedge() { m.add(&m.hedges, 1) }

func (m *fleetMetrics) addHedgeWin() { m.add(&m.hedgeWins, 1) }

func (m *fleetMetrics) addFailover() { m.add(&m.failovers, 1) }

func (m *fleetMetrics) addWarmsyncKeys(n int64) { m.add(&m.warmsyncKeys, n) }

func (m *fleetMetrics) addBatch(entries, deduped int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchRequests += entries
	m.batchDeduped += deduped
}

func (m *fleetMetrics) add(p *int64, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	*p += n
}

// snapshot reads the counters for tests.
func (m *fleetMetrics) snapshot() (retries, hedges, failovers, warmsync int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries, m.hedges, m.failovers, m.warmsyncKeys
}

// write emits the Prometheus text exposition.
func (m *fleetMetrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pestod_fleet_requests_total Finished fleet-router requests by endpoint and outcome.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_requests_total counter")
	for _, ep := range sortedKeys(m.requests) {
		byOutcome := m.requests[ep]
		for _, oc := range sortedKeys(byOutcome) {
			fmt.Fprintf(w, "pestod_fleet_requests_total{endpoint=%q,outcome=%q} %d\n", ep, oc, byOutcome[oc])
		}
	}

	fmt.Fprintln(w, "# HELP pestod_fleet_retries_total Failed full ring passes that backed off and retried.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_retries_total counter")
	fmt.Fprintf(w, "pestod_fleet_retries_total %d\n", m.retries)
	fmt.Fprintln(w, "# HELP pestod_fleet_hedges_total Hedge requests fired at the next ring replica.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_hedges_total counter")
	fmt.Fprintf(w, "pestod_fleet_hedges_total %d\n", m.hedges)
	fmt.Fprintln(w, "# HELP pestod_fleet_hedge_wins_total Hedge requests whose answer was served.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_hedge_wins_total counter")
	fmt.Fprintf(w, "pestod_fleet_hedge_wins_total %d\n", m.hedgeWins)
	fmt.Fprintln(w, "# HELP pestod_fleet_failovers_total Requests answered by a replica other than the ring owner.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_failovers_total counter")
	fmt.Fprintf(w, "pestod_fleet_failovers_total %d\n", m.failovers)
	fmt.Fprintln(w, "# HELP pestod_fleet_warmsync_keys_total Cache entries installed into rejoining replicas.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_warmsync_keys_total counter")
	fmt.Fprintf(w, "pestod_fleet_warmsync_keys_total %d\n", m.warmsyncKeys)
	fmt.Fprintln(w, "# HELP pestod_fleet_batch_entries_total Batch entries received by POST /v1/place/batch.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_batch_entries_total counter")
	fmt.Fprintf(w, "pestod_fleet_batch_entries_total %d\n", m.batchRequests)
	fmt.Fprintln(w, "# HELP pestod_fleet_batch_deduped_total Batch entries answered by another identical entry's solve.")
	fmt.Fprintln(w, "# TYPE pestod_fleet_batch_deduped_total counter")
	fmt.Fprintf(w, "pestod_fleet_batch_deduped_total %d\n", m.batchDeduped)

	fmt.Fprintln(w, "# HELP pestod_fleet_hop_latency_seconds Latency of one backend attempt, by hop kind (first/retry/hedge/last-resort).")
	fmt.Fprintln(w, "# TYPE pestod_fleet_hop_latency_seconds histogram")
	for _, kind := range sortedKeys(m.hopHist) {
		h := m.hopHist[kind]
		cum := int64(0)
		for i, ub := range hopBuckets {
			cum += h.bucketN[i]
			fmt.Fprintf(w, "pestod_fleet_hop_latency_seconds_bucket{kind=%q,le=%q} %d\n", kind, trimHopFloat(ub), cum)
		}
		cum += h.bucketN[len(hopBuckets)]
		fmt.Fprintf(w, "pestod_fleet_hop_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", kind, cum)
		fmt.Fprintf(w, "pestod_fleet_hop_latency_seconds_sum{kind=%q} %g\n", kind, h.sum)
		fmt.Fprintf(w, "pestod_fleet_hop_latency_seconds_count{kind=%q} %d\n", kind, h.count)
	}

	var states []replicaState
	if m.replicaStates != nil {
		states = m.replicaStates()
	}
	sort.Slice(states, func(a, b int) bool { return states[a].id < states[b].id })
	fmt.Fprintln(w, "# HELP pestod_fleet_replica_up Replica liveness as seen by the router (1 = taking traffic).")
	fmt.Fprintln(w, "# TYPE pestod_fleet_replica_up gauge")
	for _, st := range states {
		up := 0
		if st.up {
			up = 1
		}
		fmt.Fprintf(w, "pestod_fleet_replica_up{replica=%q} %d\n", st.id, up)
	}
	fmt.Fprintln(w, "# HELP pestod_fleet_breaker_state Circuit-breaker state per replica (0 closed, 1 half-open, 2 open).")
	fmt.Fprintln(w, "# TYPE pestod_fleet_breaker_state gauge")
	for _, st := range states {
		fmt.Fprintf(w, "pestod_fleet_breaker_state{replica=%q} %d\n", st.id, st.breaker)
	}
}

func trimHopFloat(f float64) string { return fmt.Sprintf("%g", f) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
