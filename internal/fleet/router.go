package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pesto/internal/engine"
	"pesto/internal/obs"
	"pesto/internal/service"
	"pesto/internal/trace"
)

// Config sizes the fleet router. The zero value of every field means
// "use the default".
type Config struct {
	// VNodes is the number of virtual nodes per replica on the hash
	// ring; zero means 64.
	VNodes int
	// Passes is how many full failover sweeps of the ring a request
	// makes before giving up (sleeping between sweeps); zero means 3.
	Passes int
	// BaseBackoff and MaxBackoff bound the exponential between-pass
	// backoff; zero means 25ms and 1s. The actual sleep also honors any
	// Retry-After a replica returned during the failed pass.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the backoff jitter. Jitter is a pure hash of
	// (seed, fingerprint, pass) — replayable, no shared random stream.
	Seed int64
	// HedgeMin and HedgeMax clamp the latency-percentile hedge trigger;
	// zero means 25ms and 2s. A request outliving the tracked p95
	// (clamped to this band) is hedged to the next ring replica.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// DisableHedge turns hedging off (the chaos determinism harness
	// uses it to keep request counts exact).
	DisableHedge bool
	// Breaker parameters: a replica failing BreakerFailFrac of at least
	// BreakerMinSamples requests within BreakerWindow opens its breaker
	// for BreakerCooldown, then re-admits via one half-open probe.
	// Zeros mean 5s window, 8 samples, 0.5 fraction, 2s cooldown.
	BreakerWindow     time.Duration
	BreakerMinSamples int
	BreakerFailFrac   float64
	BreakerCooldown   time.Duration
	// Prober parameters: every ProbeInterval each replica's /healthz is
	// probed with ProbeTimeout; ProbeFailures consecutive failures mark
	// it down, and the first healthy probe of a down replica warm-syncs
	// its keyspace before marking it up. Zeros mean 500ms, 2, 1s.
	ProbeInterval time.Duration
	ProbeFailures int
	ProbeTimeout  time.Duration
	// MaxBodyBytes and MaxGraphNodes bound decoded request bodies the
	// same way the replicas themselves do; zeros mean 32 MiB and 50000.
	MaxBodyBytes  int64
	MaxGraphNodes int
	// BatchParallel bounds concurrent upstream calls made for one
	// POST /v1/place/batch; zero means 2× the replica count.
	BatchParallel int
	// TraceHistory is how many recent traces the router retains for
	// GET /v1/requests/{id}/trace; zero means 1024.
	TraceHistory int
	// Clock and Sleep are the router's time sources, injectable so the
	// chaos harness runs on a virtual clock. Nil means time.Now and a
	// context-aware timer sleep.
	Clock func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults(replicas int) Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Passes <= 0 {
		c.Passes = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 5 * time.Second
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 8
	}
	if c.BreakerFailFrac <= 0 || c.BreakerFailFrac > 1 {
		c.BreakerFailFrac = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxGraphNodes <= 0 {
		c.MaxGraphNodes = 50000
	}
	if c.BatchParallel <= 0 {
		c.BatchParallel = 2 * replicas
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// replica is one backend plus the router's live view of it.
type replica struct {
	b  Backend
	br *breaker

	mu         sync.Mutex
	up         bool
	probeFails int
}

func (r *replica) isUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up
}

// Router fronts a set of pestod replicas: it routes each request to
// the ring owner of its graph fingerprint, fails over along the ring
// on errors and saturation, hedges slow requests, retires dead
// replicas (probes + breakers), and warm-syncs rejoining ones. Mount
// it as an http.Handler; it serves the same /v1/place surface as a
// single pestod plus POST /v1/place/batch.
type Router struct {
	cfg     Config
	ring    *ring
	reps    []*replica
	repByID map[string]*replica
	mux     *http.ServeMux
	met     *fleetMetrics
	lat     *latencyTracker
	pool    *engine.Pool
	traces  *traceStore
}

// New builds a Router over the backends. Backend IDs must be non-empty
// and distinct: they are ring coordinates and metric labels.
func New(cfg Config, backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("fleet: at least one backend required")
	}
	ids := make([]string, len(backends))
	seen := make(map[string]bool, len(backends))
	for i, b := range backends {
		id := b.ID()
		if id == "" || seen[id] {
			return nil, fmt.Errorf("fleet: backend IDs must be non-empty and distinct (got %q)", id)
		}
		seen[id] = true
		ids[i] = id
	}
	cfg = cfg.withDefaults(len(backends))
	rt := &Router{
		cfg:     cfg,
		ring:    newRing(ids, cfg.VNodes),
		met:     newFleetMetrics(),
		lat:     &latencyTracker{},
		mux:     http.NewServeMux(),
		pool:    engine.New(cfg.BatchParallel),
		traces:  newTraceStore(cfg.TraceHistory),
		repByID: make(map[string]*replica, len(backends)),
	}
	for _, b := range backends {
		r := &replica{
			b:  b,
			up: true,
			br: newBreaker(breakerConfig{
				window:     cfg.BreakerWindow,
				minSamples: cfg.BreakerMinSamples,
				failFrac:   cfg.BreakerFailFrac,
				cooldown:   cfg.BreakerCooldown,
			}),
		}
		rt.reps = append(rt.reps, r)
		rt.repByID[b.ID()] = r
	}
	rt.met.replicaStates = rt.replicaStates
	rt.mux.HandleFunc("POST /v1/place", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "place", "/v1/place") })
	rt.mux.HandleFunc("POST /v1/trace", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, "trace", "/v1/trace") })
	rt.mux.HandleFunc("POST /v1/place/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /v1/requests/{id}/trace", rt.handleTrace)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Start launches the background prober; it stops when ctx ends.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll runs one health-check round over every replica. The
// background prober calls it on a ticker; tests and the chaos harness
// call it directly to keep failure detection deterministic.
func (rt *Router) ProbeAll(ctx context.Context) {
	for _, r := range rt.reps {
		rt.probe(ctx, r)
	}
}

func (rt *Router) probe(ctx context.Context, r *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	resp, err := r.b.Do(pctx, http.MethodGet, "/healthz", nil, nil)
	cancel()
	healthy := err == nil && resp.Status == http.StatusOK
	r.mu.Lock()
	if healthy {
		r.probeFails = 0
		if !r.up {
			// Dead → alive: warm-sync the replica's keyspace from its
			// peers before routing traffic to it, so rejoin costs a sync,
			// not a cold-cache stampede of re-solves.
			r.mu.Unlock()
			n := rt.warmSync(ctx, r)
			rt.met.addWarmsyncKeys(int64(n))
			r.mu.Lock()
			r.up = true
		}
	} else {
		r.probeFails++
		if r.probeFails >= rt.cfg.ProbeFailures {
			r.up = false
		}
	}
	r.mu.Unlock()
}

// warmSync pulls the target replica's keyspace arcs from every live
// peer and imports them, returning how many entries were installed.
// Failures are tolerated — a partial warm-sync just means more cache
// misses — because blocking rejoin on a flaky peer would turn one
// fault into two.
func (rt *Router) warmSync(ctx context.Context, target *replica) int {
	idx := -1
	for i, r := range rt.reps {
		if r == target {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	// Warm-sync is traced like client traffic: every export/import call
	// is a hop of one synthetic trace, so a rejoin's data movement is
	// reconstructable the same way a request's failover is.
	lt := newLiveTrace(obs.TraceContext{TraceID: "warmsync-" + obs.NewTraceID()},
		target.b.ID(), http.MethodPost, "/v1/cache/import")
	rt.traces.put(lt)
	installed := 0
	for _, a := range rt.ring.arcs(idx) {
		for _, peer := range rt.reps {
			if peer == target || !peer.isUp() {
				continue
			}
			path := fmt.Sprintf("/v1/cache/export?lo=%d&hi=%d", a[0], a[1])
			resp, err := rt.syncDo(ctx, lt, peer, http.MethodGet, path, nil)
			if err != nil || resp.Status != http.StatusOK {
				continue
			}
			var exp struct {
				Entries []json.RawMessage `json:"entries"`
			}
			if json.Unmarshal(resp.Body, &exp) != nil || len(exp.Entries) == 0 {
				continue
			}
			ir, err := rt.syncDo(ctx, lt, target, http.MethodPost, "/v1/cache/import", resp.Body)
			if err != nil || ir.Status != http.StatusOK {
				continue
			}
			var res service.CacheImportResult
			if json.Unmarshal(ir.Body, &res) == nil {
				installed += res.Installed
			}
		}
	}
	return installed
}

// syncDo performs one warm-sync call as a recorded hop of lt.
func (rt *Router) syncDo(ctx context.Context, lt *liveTrace, r *replica, method, path string, body []byte) (*Response, error) {
	seq, hdrVal, reqID := lt.beginHop("warm-sync", r.b.ID(), 0, rt.cfg.Clock().UnixNano())
	hdr := make(http.Header)
	hdr.Set(obs.TraceHeader, hdrVal)
	hdr.Set("X-Request-ID", reqID)
	resp, err := r.b.Do(ctx, method, path, hdr, body)
	status := 0
	if resp != nil {
		status = resp.Status
	}
	lt.endHop(seq, rt.cfg.Clock().UnixNano(), status, err)
	return resp, err
}

// errNoCandidates marks a pass where no replica was even attemptable:
// everything down or breaker-open. The caller escalates to a
// last-resort pass that ignores the gates — during a total-outage
// *detection* window (probes blackholed, breakers open, replicas
// actually fine) requests must still get through.
var errNoCandidates = errors.New("fleet: no live replicas")

// Do routes one already-fingerprinted request through the fleet:
// ring-order failover within a pass, deadline-aware backoff between
// passes, hedging on slow replicas. It returns the first coherent
// replica response (any status < 500 except 429) or the last error.
// The request is traced under a fresh trace ID; callers that care
// which use DoTraced.
func (rt *Router) Do(ctx context.Context, method, path string, body []byte, fp [32]byte) (*Response, error) {
	resp, _, err := rt.DoTraced(ctx, method, path, body, fp, obs.TraceContext{})
	return resp, err
}

// DoTraced is Do under an explicit trace context: every backend
// attempt becomes a recorded hop carrying X-Pesto-Trace and a
// trace-derived X-Request-ID, retained for GET /v1/requests/{id}/trace.
// A zero tc gets a fresh trace ID; the ID used is returned either way.
func (rt *Router) DoTraced(ctx context.Context, method, path string, body []byte, fp [32]byte, tc obs.TraceContext) (*Response, string, error) {
	if !tc.Valid() {
		tc.TraceID = obs.NewTraceID()
	}
	order := rt.ring.successors(service.RingPoint(fp))
	lt := newLiveTrace(tc, rt.reps[order[0]].b.ID(), method, path)
	rt.traces.put(lt)
	var lastErr error
	var retryAfter time.Duration
	for pass := 0; pass < rt.cfg.Passes; pass++ {
		if pass > 0 {
			d := rt.backoff(pass-1, fp)
			if retryAfter > d {
				d = retryAfter
			}
			if err := rt.cfg.Sleep(ctx, d); err != nil {
				return nil, tc.TraceID, err
			}
			rt.met.addRetry()
			retryAfter = 0
		}
		resp, ra, err := rt.onePass(ctx, method, path, body, order, false, pass, lt)
		if resp != nil {
			return resp, tc.TraceID, nil
		}
		if errors.Is(err, errNoCandidates) {
			// Nothing attemptable under the gates — last resort, same pass.
			resp, ra, err = rt.onePass(ctx, method, path, body, order, true, pass, lt)
			if resp != nil {
				return resp, tc.TraceID, nil
			}
		}
		if ra > retryAfter {
			retryAfter = ra
		}
		if err != nil {
			lastErr = err
		}
		if ctx.Err() != nil {
			return nil, tc.TraceID, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errNoCandidates
	}
	return nil, tc.TraceID, lastErr
}

// Trace reads back the router's hop record of a recent trace.
func (rt *Router) Trace(id string) (TraceRecord, bool) {
	lt, ok := rt.traces.get(id)
	if !ok {
		return TraceRecord{}, false
	}
	return lt.snapshot(), true
}

// onePass sweeps the ring order once. ignoreGates drops the liveness
// and breaker checks (the last-resort sweep).
func (rt *Router) onePass(ctx context.Context, method, path string, body []byte, order []int, ignoreGates bool, pass int, lt *liveTrace) (*Response, time.Duration, error) {
	kind := "first"
	switch {
	case ignoreGates:
		kind = "last-resort"
	case pass > 0:
		kind = "retry"
	}
	var lastErr error
	var retryAfter time.Duration
	attempted := false
	for i := 0; i < len(order); i++ {
		r := rt.reps[order[i]]
		if !ignoreGates && (!r.isUp() || !r.br.allow(rt.cfg.Clock())) {
			continue
		}
		attempted = true
		// Hedge target: the next live replica clockwise. The last-resort
		// sweep never hedges — it exists to minimize load, not latency.
		var hedge *replica
		hedgeIdx := -1
		if !rt.cfg.DisableHedge && !ignoreGates {
			for j := i + 1; j < len(order); j++ {
				if h := rt.reps[order[j]]; h.isUp() {
					hedge, hedgeIdx = h, j
					break
				}
			}
		}
		resp, servedBy, seq, err := rt.attempt(ctx, r, hedge, method, path, body, kind, pass, lt)
		if servedBy == hedge && hedge != nil {
			i = hedgeIdx // the hedge consumed the next candidate
		}
		if err != nil {
			lastErr = fmt.Errorf("replica %s: %w", servedBy.b.ID(), err)
			continue
		}
		if resp.Status == http.StatusTooManyRequests || resp.Status == http.StatusServiceUnavailable {
			if ra := parseRetryAfter(resp); ra > retryAfter {
				retryAfter = ra
			}
			lastErr = fmt.Errorf("replica %s: status %d", servedBy.b.ID(), resp.Status)
			continue
		}
		if resp.Status >= 500 {
			lastErr = fmt.Errorf("replica %s: status %d", servedBy.b.ID(), resp.Status)
			continue
		}
		if servedBy != rt.reps[order[0]] {
			rt.met.addFailover()
		}
		lt.markServed(seq)
		if resp.Header == nil {
			resp.Header = make(http.Header)
		}
		resp.Header.Set("X-Pesto-Replica", servedBy.b.ID())
		return resp, 0, nil
	}
	if !attempted {
		return nil, retryAfter, errNoCandidates
	}
	return nil, retryAfter, lastErr
}

// attemptResult is one in-flight request's outcome.
type attemptResult struct {
	resp *Response
	err  error
	rep  *replica
	dur  time.Duration
	seq  int
}

// attempt sends the request to prim, hedging to hedge (may be nil) if
// prim outlives the tracked latency percentile. The first coherent
// answer wins; returns which replica produced the returned result and
// the hop sequence number of that result.
func (rt *Router) attempt(ctx context.Context, prim, hedge *replica, method, path string, body []byte, kind string, pass int, lt *liveTrace) (*Response, *replica, int, error) {
	ch := make(chan attemptResult, 2)
	send := func(r *replica, hopKind string) {
		start := rt.cfg.Clock()
		seq, hdrVal, reqID := lt.beginHop(hopKind, r.b.ID(), pass, start.UnixNano())
		hdr := make(http.Header)
		hdr.Set(obs.TraceHeader, hdrVal)
		hdr.Set("X-Request-ID", reqID)
		resp, err := r.b.Do(ctx, method, path, hdr, body)
		now := rt.cfg.Clock()
		status := 0
		if resp != nil {
			status = resp.Status
		}
		lt.endHop(seq, now.UnixNano(), status, err)
		rt.met.observeHop(hopKind, now.Sub(start))
		r.br.record(now, err == nil && resp.Status < 500)
		ch <- attemptResult{resp: resp, err: err, rep: r, dur: now.Sub(start), seq: seq}
	}
	go send(prim, kind)
	if hedge == nil {
		res := <-ch
		rt.observeLatency(res)
		return res.resp, res.rep, res.seq, res.err
	}
	timer := time.NewTimer(rt.lat.p95(rt.cfg.HedgeMin, rt.cfg.HedgeMax))
	defer timer.Stop()
	pending := 1
	select {
	case res := <-ch:
		rt.observeLatency(res)
		return res.resp, res.rep, res.seq, res.err
	case <-timer.C:
		if hedge.br.allow(rt.cfg.Clock()) {
			rt.met.addHedge()
			pending++
			go send(hedge, "hedge")
		}
	}
	var last attemptResult
	for pending > 0 {
		res := <-ch
		pending--
		last = res
		if res.err == nil && res.resp.Status < 500 &&
			res.resp.Status != http.StatusTooManyRequests {
			break
		}
	}
	rt.observeLatency(last)
	if last.rep == hedge {
		rt.met.addHedgeWin()
	}
	return last.resp, last.rep, last.seq, last.err
}

func (rt *Router) observeLatency(res attemptResult) {
	if res.err == nil && res.resp != nil && res.resp.Status < 500 {
		rt.lat.observe(res.dur)
	}
}

// backoffJitterSalt versions the jitter hash.
const backoffJitterSalt = "pesto/fleet-backoff/v1"

// backoff is the between-pass sleep: exponential in the pass number,
// clamped, with jitter in [0.5, 1.0) of the clamped value derived by
// hashing (seed, fingerprint, pass) — replayable under a fixed seed
// with no shared random stream, so concurrency can't perturb it.
func (rt *Router) backoff(pass int, fp [32]byte) time.Duration {
	d := rt.cfg.BaseBackoff << uint(pass)
	if d > rt.cfg.MaxBackoff || d <= 0 {
		d = rt.cfg.MaxBackoff
	}
	var buf [len(backoffJitterSalt) + 8 + 32 + 8]byte
	off := copy(buf[:], backoffJitterSalt)
	binary.LittleEndian.PutUint64(buf[off:], uint64(rt.cfg.Seed))
	off += 8
	off += copy(buf[off:], fp[:])
	binary.LittleEndian.PutUint64(buf[off:], uint64(pass))
	h := sha256.Sum256(buf[:])
	frac := binary.BigEndian.Uint64(h[:8]) % 1024
	half := d / 2
	return half + half*time.Duration(frac)/1024
}

// parseRetryAfter extracts a replica's backoff hint from a 429/503:
// the Retry-After header when present, the body's retryAfterSec
// otherwise (clients that only see bodies still back off; the router
// honors whichever survives the transport).
func parseRetryAfter(resp *Response) time.Duration {
	if resp.Header != nil {
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.ParseInt(v, 10, 64); err == nil && secs >= 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	var er struct {
		RetryAfterSec int64 `json:"retryAfterSec"`
	}
	if json.Unmarshal(resp.Body, &er) == nil && er.RetryAfterSec > 0 {
		return time.Duration(er.RetryAfterSec) * time.Second
	}
	return 0
}

// replicaStates snapshots per-replica condition for metrics and
// health.
func (rt *Router) replicaStates() []replicaState {
	out := make([]replicaState, 0, len(rt.reps))
	for _, r := range rt.reps {
		out = append(out, replicaState{id: r.b.ID(), up: r.isUp(), breaker: r.br.current()})
	}
	return out
}

// Stats reads the router's counters for tests and the chaos harness.
func (rt *Router) Stats() (retries, hedges, failovers, warmsyncKeys int64) {
	return rt.met.snapshot()
}

// handleProxy serves POST /v1/place and /v1/trace: decode just enough
// to learn the graph fingerprint, route the *original* body through
// the fleet, and relay the replica's answer verbatim (byte-identity
// with a single replica is the contract).
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request, endpoint, path string) {
	body, err := readBody(w, r, rt.cfg.MaxBodyBytes)
	if err != nil {
		rt.writeError(w, endpoint, http.StatusRequestEntityTooLarge, "too_large", err)
		return
	}
	req, err := service.DecodePlaceRequest(bytes.NewReader(body), rt.cfg.MaxBodyBytes, rt.cfg.MaxGraphNodes)
	if err != nil {
		code, outcome := http.StatusBadRequest, "bad_request"
		if errors.Is(err, service.ErrTooLarge) {
			code, outcome = http.StatusRequestEntityTooLarge, "too_large"
		}
		rt.writeError(w, endpoint, code, outcome, err)
		return
	}
	// Adopt the client's trace context when it sent a valid one (a
	// fronting router, a test harness); mint a trace otherwise. The ID
	// is echoed so the caller can fetch the stitched trace afterwards.
	tc := clientTraceContext(r)
	w.Header().Set(obs.TraceHeader, tc.TraceID)
	resp, _, err := rt.DoTraced(r.Context(), http.MethodPost, path, body, req.Graph.Fingerprint(), tc)
	if err != nil {
		rt.writeError(w, endpoint, http.StatusServiceUnavailable, "unavailable", err)
		return
	}
	relay(w, resp)
	rt.met.request(endpoint, outcomeFor(resp.Status))
}

// clientTraceContext parses the request's X-Pesto-Trace, minting a
// fresh root context when the header is absent or malformed. Overlong
// IDs are rejected by the parser, which keeps derived per-hop request
// IDs inside the replicas' X-Request-ID length cap.
func clientTraceContext(r *http.Request) obs.TraceContext {
	tc, err := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	if err != nil {
		return obs.TraceContext{TraceID: obs.NewTraceID()}
	}
	return tc
}

// BatchRequest is the body of POST /v1/place/batch: a list of
// standalone /v1/place request bodies, answered positionally.
type BatchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchResult is one entry's answer: the HTTP status a standalone
// /v1/place would have returned, plus its body verbatim.
type BatchResult struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the body of POST /v1/place/batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// batchKey identifies one deduplicable batch entry: same graph
// fingerprint and same options means same plan, so one upstream solve
// answers every duplicate.
type batchKey struct {
	fp   [32]byte
	opts service.RequestOptions
}

// handleBatch serves POST /v1/place/batch: entries with identical
// (fingerprint, options) collapse onto one upstream request, distinct
// entries fan out across the ring concurrently, and results come back
// in submission order.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, rt.cfg.MaxBodyBytes*4)
	if err != nil {
		rt.writeError(w, "batch", http.StatusRequestEntityTooLarge, "too_large", err)
		return
	}
	var breq BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		rt.writeError(w, "batch", http.StatusBadRequest, "bad_request",
			fmt.Errorf("decode batch: %v: %w", err, service.ErrBadRequest))
		return
	}
	if len(breq.Requests) == 0 {
		rt.writeError(w, "batch", http.StatusBadRequest, "bad_request",
			fmt.Errorf("empty batch: %w", service.ErrBadRequest))
		return
	}

	// First sweep: decode every entry, dedupe on (fingerprint, options).
	// Decode failures become per-entry 400 results rather than failing
	// the batch — one bad graph must not waste its neighbors' solves.
	type uniqueReq struct {
		fp   [32]byte
		body []byte
	}
	results := make([]BatchResult, len(breq.Requests))
	entryOf := make(map[batchKey]int) // key → index into uniques
	var uniques []uniqueReq
	entryUnique := make([]int, len(breq.Requests)) // entry → unique index, -1 = decode error
	for i, raw := range breq.Requests {
		req, err := service.DecodePlaceRequest(bytes.NewReader(raw), rt.cfg.MaxBodyBytes, rt.cfg.MaxGraphNodes)
		if err != nil {
			entryUnique[i] = -1
			eb, _ := json.Marshal(service.ErrorResponse{Error: err.Error()})
			status := http.StatusBadRequest
			if errors.Is(err, service.ErrTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			results[i] = BatchResult{Status: status, Body: eb}
			continue
		}
		key := batchKey{fp: req.Graph.Fingerprint(), opts: req.Options}
		u, ok := entryOf[key]
		if !ok {
			u = len(uniques)
			uniques = append(uniques, uniqueReq{fp: key.fp, body: raw})
			entryOf[key] = u
		}
		entryUnique[i] = u
	}
	rt.met.addBatch(int64(len(breq.Requests)), int64(len(breq.Requests)-len(uniques))-countNeg(entryUnique))

	// Fan out the unique requests across the ring. engine.Map returns
	// results in submission order, so the response is deterministic for
	// a fixed batch regardless of upstream concurrency. Each unique
	// entry is traced as `<batch trace>.b<unique>`, so the whole fan-out
	// is reconstructable from the batch's own trace ID.
	tc := clientTraceContext(r)
	w.Header().Set(obs.TraceHeader, tc.TraceID)
	type upstream struct {
		status int
		body   []byte
	}
	resps, _ := engine.Map(r.Context(), rt.pool, len(uniques), func(ctx context.Context, i int) (upstream, error) {
		utc := obs.TraceContext{TraceID: fmt.Sprintf("%s.b%d", tc.TraceID, i), Parent: tc.Parent}
		resp, _, err := rt.DoTraced(ctx, http.MethodPost, "/v1/place", uniques[i].body, uniques[i].fp, utc)
		if err != nil {
			eb, _ := json.Marshal(service.ErrorResponse{Error: err.Error()})
			return upstream{status: http.StatusServiceUnavailable, body: eb}, nil
		}
		return upstream{status: resp.Status, body: resp.Body}, nil
	})
	for i := range results {
		u := entryUnique[i]
		if u < 0 {
			continue
		}
		results[i] = BatchResult{Status: resps[u].Value.status, Body: json.RawMessage(resps[u].Value.body)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(BatchResponse{Results: results})
	rt.met.request("batch", "ok")
}

func countNeg(xs []int) int64 {
	var n int64
	for _, x := range xs {
		if x < 0 {
			n++
		}
	}
	return n
}

// handleTrace serves GET /v1/requests/{id}/trace: the router's hop
// record of one recent trace, stitched with each serving replica's
// retained span dump into one Chrome Trace Event file — the router's
// hops as one process lane, every replica's solver spans as their own
// lanes, all aligned on the router's clock. Replicas that died or
// restarted since simply contribute an empty lane; the hop record
// itself always survives at the router.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	lt, ok := rt.traces.get(id)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(service.ErrorResponse{Error: "no trace retained for id", RequestID: id})
		return
	}
	rec := lt.snapshot()
	hops := make([]trace.FleetHop, len(rec.Hops))
	dumps := make([][]trace.FleetSpanRecord, len(rec.Hops))
	for i, h := range rec.Hops {
		hops[i] = trace.FleetHop{
			Seq: h.Seq, Replica: h.Replica, Pass: h.Pass, Kind: h.Kind,
			RequestID: h.RequestID, StartNs: h.StartNs, EndNs: h.EndNs,
			Status: h.Status, Err: h.Err, Served: h.Served,
		}
		rep := rt.repByID[h.Replica]
		if rep == nil {
			continue
		}
		resp, err := rep.b.Do(r.Context(), http.MethodGet, "/v1/requests/"+h.RequestID+"/spans", nil, nil)
		if err != nil || resp.Status != http.StatusOK {
			continue
		}
		var dump struct {
			Records []trace.FleetSpanRecord `json:"records"`
		}
		if json.Unmarshal(resp.Body, &dump) != nil {
			continue
		}
		dumps[i] = dump.Records
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pesto-fleet-trace.json"`)
	trace.WriteChromeTraceFleet(w, id, hops, dumps)
}

// handleHealth reports the router's view of the fleet. 200 while at
// least one replica takes traffic, 503 otherwise.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	states := rt.replicaStates()
	upCount := 0
	type repHealth struct {
		ID      string `json:"id"`
		Up      bool   `json:"up"`
		Breaker string `json:"breaker"`
	}
	reps := make([]repHealth, 0, len(states))
	for _, st := range states {
		if st.up {
			upCount++
		}
		reps = append(reps, repHealth{ID: st.id, Up: st.up, Breaker: breakerStateName(st.breaker)})
	}
	status, code := "ok", http.StatusOK
	switch {
	case upCount == 0:
		status, code = "down", http.StatusServiceUnavailable
	case upCount < len(states):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"status": status, "replicas": reps})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.met.write(w)
}

func (rt *Router) writeError(w http.ResponseWriter, endpoint string, code int, outcome string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(service.ErrorResponse{Error: err.Error()})
	rt.met.request(endpoint, outcome)
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := readAllLimited(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("read body: %v: %w", err, service.ErrTooLarge)
	}
	return body, nil
}

func readAllLimited(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r)
	return buf.Bytes(), err
}

// relay copies a replica response to the client, preserving the body
// verbatim and the headers that carry meaning across the fleet.
func relay(w http.ResponseWriter, resp *Response) {
	for _, h := range []string{"Content-Type", "X-Pesto-Cache", "X-Pesto-Replica", "Retry-After", "Content-Disposition"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

func outcomeFor(status int) string {
	switch {
	case status < 300:
		return "ok"
	case status < 500:
		return "client_error"
	default:
		return "upstream_error"
	}
}
