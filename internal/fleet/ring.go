// Package fleet is the fault-tolerant serving tier over a set of
// pestod replicas: a consistent-hash router keyed on graph
// fingerprints, with active health checking, passive circuit breakers,
// deadline-aware retries, latency-triggered hedging, and warm-sync
// failover. One replica going down moves only its arc of the keyspace;
// a replica coming back warm-syncs that arc from its ring neighbors
// before taking traffic, so a kill/rejoin cycle costs locality, not
// correctness. Plans stay byte-identical to a single-replica oracle —
// the router moves requests, never changes answers.
//
// The package uses only the standard library, mirroring
// internal/service. See DESIGN.md, "Fleet model".
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// vnodeSalt versions the vnode hash so ring layout changes are
// deliberate (a salt bump remaps every arc).
const vnodeSalt = "pesto/fleet-vnode/v1|"

// vnodeHash places one virtual node of a replica on the ring.
func vnodeHash(id string, v int) uint64 {
	h := sha256.Sum256([]byte(vnodeSalt + id + "|" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(h[:8])
}

// ring is a consistent-hash ring over replica indices. Each replica
// owns the arcs (prev, point] ending at its virtual nodes; a key's
// ring point (service.RingPoint of its graph fingerprint) lands on
// exactly one arc. Virtual nodes smooth the per-replica keyspace share
// so three replicas each own roughly a third of the hot set.
//
// The ring is immutable after construction: liveness is the router's
// concern (dead replicas are skipped in successor order), not the
// ring's, so membership changes never remap arcs out from under the
// warm-sync protocol.
type ring struct {
	points []ringVnode // sorted ascending by hash
	n      int         // replica count
}

// ringVnode is one virtual node: a position and its owning replica.
type ringVnode struct {
	hash uint64
	idx  int
}

// newRing builds the ring for n replicas with the given IDs and vnodes
// virtual nodes per replica.
func newRing(ids []string, vnodes int) *ring {
	r := &ring{n: len(ids)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringVnode{hash: vnodeHash(id, v), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// ownerAt returns the index into points of the virtual node owning
// ring point p: the first vnode at or clockwise of p, wrapping to the
// lowest vnode past the top of the keyspace (arcs are (prev, point]).
func (r *ring) ownerAt(p uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// successors returns every replica index in preference order for ring
// point p: the owner first, then each distinct replica met walking
// clockwise. This is both the failover order (next successor takes a
// dead owner's arc) and the hedge order.
func (r *ring) successors(p uint64) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := r.ownerAt(p)
	for off := 0; off < len(r.points) && len(out) < r.n; off++ {
		idx := r.points[(start+off)%len(r.points)].idx
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// arcs returns the keyspace owned by replica idx as (lo, hi] pairs —
// the shard coordinates the warm-sync protocol passes to
// GET /v1/cache/export. With a single replica the one merged arc
// degenerates to lo == hi, which the export endpoint reads as the full
// ring — consistent by construction.
func (r *ring) arcs(idx int) [][2]uint64 {
	var out [][2]uint64
	for i, pt := range r.points {
		if pt.idx != idx {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		out = append(out, [2]uint64{prev, pt.hash})
	}
	return out
}
