package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postTraced is postJSON plus a client-supplied X-Pesto-Trace header.
func postTraced(t *testing.T, h http.Handler, path, traceHeader string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Pesto-Trace", traceHeader)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestRouterAdoptsClientTrace checks a valid client trace context is
// adopted: the ID is echoed, the hop record is retained under it, and
// the one served hop names the replica the response header names.
func TestRouterAdoptsClientTrace(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	body, _ := placeBody(t, 1)
	w := postTraced(t, rt, "/v1/place", "trace-unit;hop=0;parent=0", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
	}
	if got := w.Header().Get("X-Pesto-Trace"); got != "trace-unit" {
		t.Fatalf("trace ID not echoed: %q", got)
	}
	rec, ok := rt.Trace("trace-unit")
	if !ok {
		t.Fatal("no trace retained under the client's ID")
	}
	if len(rec.Hops) != 1 {
		t.Fatalf("healthy fleet took %d hops, want 1: %+v", len(rec.Hops), rec.Hops)
	}
	h := rec.Hops[0]
	if !h.Served || h.Replica != w.Header().Get("X-Pesto-Replica") || h.Replica != rec.Owner {
		t.Fatalf("served hop inconsistent with response: %+v owner=%s header=%s", h, rec.Owner, w.Header().Get("X-Pesto-Replica"))
	}
	if h.RequestID != "trace-unit.h0" || h.Kind != "first" || h.Status != http.StatusOK {
		t.Fatalf("hop misrecorded: %+v", h)
	}
}

// TestRouterMintsTraceWhenHeaderAbsent checks every request is traced
// even without a client context: the minted ID is echoed and resolvable.
func TestRouterMintsTraceWhenHeaderAbsent(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	body, _ := placeBody(t, 2)
	w := postJSON(t, rt, "/v1/place", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
	}
	id := w.Header().Get("X-Pesto-Trace")
	if id == "" {
		t.Fatal("no trace ID minted")
	}
	if _, ok := rt.Trace(id); !ok {
		t.Fatalf("minted trace %q not retained", id)
	}
}

// TestRouterTraceRecordsFailoverHops checks the trace of a request
// whose ring owner is dead shows both the failed attempt and the
// serving successor.
func TestRouterTraceRecordsFailoverHops(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	dead := &fakeBackend{id: "r1", fn: func(ctx context.Context, method, path string, body []byte) (*Response, error) {
		return nil, ErrReplicaDown
	}}
	rt.reps[1].b = dead
	body, _ := bodyOwnedBy(t, rt, 1)
	w := postTraced(t, rt, "/v1/place", "trace-failover;hop=0;parent=0", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
	}
	rec, ok := rt.Trace("trace-failover")
	if !ok {
		t.Fatal("no trace retained")
	}
	if len(rec.Hops) < 2 || rec.Owner != "r1" {
		t.Fatalf("failover trace incomplete: owner=%s hops=%+v", rec.Owner, rec.Hops)
	}
	if h := rec.Hops[0]; h.Replica != "r1" || h.Served || h.Err == "" {
		t.Fatalf("dead-owner hop misrecorded: %+v", h)
	}
	last := rec.Hops[len(rec.Hops)-1]
	if !last.Served || last.Replica == "r1" || last.Replica != w.Header().Get("X-Pesto-Replica") {
		t.Fatalf("serving hop misrecorded: %+v", last)
	}
}

// TestRouterStitchedTraceEndpoint checks GET /v1/requests/{id}/trace
// merges the router's hops with the serving replica's span dump into
// one Chrome trace, and 404s for unknown IDs.
func TestRouterStitchedTraceEndpoint(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	body, _ := placeBody(t, 3)
	w := postTraced(t, rt, "/v1/place", "trace-stitch;hop=0;parent=0", body)
	if w.Code != http.StatusOK {
		t.Fatalf("place: status %d", w.Code)
	}
	served := w.Header().Get("X-Pesto-Replica")

	g := httptest.NewRecorder()
	rt.ServeHTTP(g, httptest.NewRequest(http.MethodGet, "/v1/requests/trace-stitch/trace", nil))
	if g.Code != http.StatusOK {
		t.Fatalf("stitch: status %d: %s", g.Code, g.Body.String())
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(g.Body.Bytes(), &out); err != nil {
		t.Fatalf("stitched trace not JSON: %v", err)
	}
	stitched := g.Body.String()
	if !strings.Contains(stitched, "fleet router") {
		t.Fatal("router lane missing from stitched trace")
	}
	if !strings.Contains(stitched, fmt.Sprintf("replica %s", served)) {
		t.Fatalf("serving replica %s has no lane in stitched trace: %.300s", served, stitched)
	}
	// The replica's span dump must actually be in there, not just the
	// router's hop events: the solver emits placement.* spans.
	if !strings.Contains(stitched, "placement.") {
		t.Fatal("replica solver spans missing from stitched trace")
	}

	nf := httptest.NewRecorder()
	rt.ServeHTTP(nf, httptest.NewRequest(http.MethodGet, "/v1/requests/no-such-trace/trace", nil))
	if nf.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", nf.Code)
	}
}

// TestBatchFanOutChildTraces checks each unique batch entry is traced
// as `<batch trace>.b<i>` so the fan-out is reconstructable.
func TestBatchFanOutChildTraces(t *testing.T) {
	rt, _ := newServiceFleet(t, 3, Config{DisableHedge: true})
	b0, _ := placeBody(t, 4)
	b1, _ := placeBody(t, 5)
	batch, err := json.Marshal(BatchRequest{Requests: []json.RawMessage{b0, b1, b0}})
	if err != nil {
		t.Fatal(err)
	}
	w := postTraced(t, rt, "/v1/place/batch", "trace-batch;hop=0;parent=0", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", w.Code, w.Body.Bytes())
	}
	if got := w.Header().Get("X-Pesto-Trace"); got != "trace-batch" {
		t.Fatalf("batch trace ID not echoed: %q", got)
	}
	// Two unique entries (the third is a dedupe of the first) → two
	// child traces, each with a served hop.
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("trace-batch.b%d", i)
		rec, ok := rt.Trace(id)
		if !ok {
			t.Fatalf("no child trace %s", id)
		}
		servedHops := 0
		for _, h := range rec.Hops {
			if h.Served {
				servedHops++
			}
		}
		if servedHops != 1 {
			t.Fatalf("child trace %s: %d served hops, want 1", id, servedHops)
		}
	}
	if _, ok := rt.Trace("trace-batch.b2"); ok {
		t.Fatal("deduplicated entry got its own child trace")
	}
}
