package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// ErrReplicaDown is the transport-level failure a dead replica
// presents: connection refused, handler gone, chaos kill. The router
// treats it as an immediate failover signal and a breaker failure.
var ErrReplicaDown = errors.New("replica down")

// Response is one replica's answer, transport-agnostic: the in-process
// handler backend and the HTTP backend produce the same shape, so the
// router, the chaos harness, and production serving share one code
// path.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// Backend is one pestod replica as the router sees it.
type Backend interface {
	// ID names the replica: the ring hashes it, the fault injector
	// targets it, metrics label it.
	ID() string
	// Do performs one request against the replica. hdr carries extra
	// request headers — the router's trace context and per-hop request
	// ID — and may be nil. A non-nil error is a transport failure (the
	// replica never answered); HTTP-level errors come back as a
	// Response with a non-2xx Status.
	Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error)
}

// HandlerBackend adapts an in-process http.Handler — a
// *service.Server — into a Backend. The chaos harness and single-binary
// fleet mode (-fleet N) run whole clusters in one process through it.
type HandlerBackend struct {
	id string
	h  http.Handler
}

// NewHandlerBackend wraps handler as replica id.
func NewHandlerBackend(id string, handler http.Handler) *HandlerBackend {
	return &HandlerBackend{id: id, h: handler}
}

// ID implements Backend.
func (b *HandlerBackend) ID() string { return b.id }

// Do implements Backend by invoking the handler directly.
func (b *HandlerBackend) Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("build request: %w", err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	copyHeader(req.Header, hdr)
	rw := &memResponse{header: make(http.Header), status: http.StatusOK}
	b.h.ServeHTTP(rw, req)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Response{Status: rw.status, Header: rw.header, Body: rw.buf.Bytes()}, nil
}

// copyHeader merges src into dst (Set semantics, so callers override
// the defaults above).
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for i, v := range vs {
			if i == 0 {
				dst.Set(k, v)
			} else {
				dst.Add(k, v)
			}
		}
	}
}

// memResponse is the minimal in-memory http.ResponseWriter behind
// HandlerBackend.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	status int
	wrote  bool
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.status = code
		m.wrote = true
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.buf.Write(p)
}

// HTTPBackend is a Backend over a real pestod at a base URL
// ("http://host:port"). Production fleet routing (-fleet-backends)
// uses it.
type HTTPBackend struct {
	id     string
	base   string
	client *http.Client
}

// NewHTTPBackend wraps the pestod at base as replica id. A nil client
// uses http.DefaultClient; callers wanting connection-level timeouts
// pass their own.
func NewHTTPBackend(id, base string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPBackend{id: id, base: base, client: client}
}

// ID implements Backend.
func (b *HTTPBackend) ID() string { return b.id }

// Do implements Backend over HTTP. Transport failures wrap
// ErrReplicaDown so the router's failover path doesn't depend on
// net/http error taxonomy.
func (b *HTTPBackend) Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("build request: %w", err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	copyHeader(req.Header, hdr)
	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %v", ErrReplicaDown, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: read body: %v", ErrReplicaDown, err)
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: data}, nil
}
