package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"pesto/internal/service"
)

func testIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%d", i)
	}
	return ids
}

// testPoint derives a pseudo-random ring point from an integer the way
// real keys do: through a SHA-256 fingerprint.
func testPoint(i int) uint64 {
	var fp [32]byte
	h := sha256.Sum256(binary.BigEndian.AppendUint64(nil, uint64(i)))
	copy(fp[:], h[:])
	return service.RingPoint(fp)
}

func TestRingBalance(t *testing.T) {
	r := newRing(testIDs(3), 64)
	counts := make([]int, 3)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.points[r.ownerAt(testPoint(i))].idx]++
	}
	// With 64 vnodes each replica should own a reasonable share: no
	// replica below half or above double the fair third.
	fair := keys / 3
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("replica %d owns %d of %d keys (fair %d): ring unbalanced %v", i, c, keys, fair, counts)
		}
	}
}

func TestRingSuccessorsDistinctAndComplete(t *testing.T) {
	r := newRing(testIDs(4), 16)
	for i := 0; i < 100; i++ {
		succ := r.successors(testPoint(i))
		if len(succ) != 4 {
			t.Fatalf("point %d: got %d successors, want 4", i, len(succ))
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("point %d: duplicate successor %d in %v", i, s, succ)
			}
			seen[s] = true
		}
	}
}

func TestRingStableUnderRepeat(t *testing.T) {
	a := newRing(testIDs(3), 32)
	b := newRing(testIDs(3), 32)
	for i := 0; i < 100; i++ {
		p := testPoint(i)
		if a.points[a.ownerAt(p)].idx != b.points[b.ownerAt(p)].idx {
			t.Fatalf("owner of point %d differs across identical rings", i)
		}
	}
}

// TestRingArcsPartition holds the warm-sync contract: every key lies
// in exactly one replica's arc set, and that replica is its owner.
func TestRingArcsPartition(t *testing.T) {
	r := newRing(testIDs(3), 16)
	arcs := make([][][2]uint64, 3)
	for i := range arcs {
		arcs[i] = r.arcs(i)
	}
	inArc := func(a [2]uint64, p uint64) bool {
		lo, hi := a[0], a[1]
		if lo == hi {
			return true
		}
		if lo < hi {
			return lo < p && p <= hi
		}
		return p > lo || p <= hi
	}
	for i := 0; i < 2000; i++ {
		p := testPoint(i)
		owner := r.points[r.ownerAt(p)].idx
		for rep := range arcs {
			n := 0
			for _, a := range arcs[rep] {
				if inArc(a, p) {
					n++
				}
			}
			want := 0
			if rep == owner {
				want = 1
			}
			if n != want {
				t.Fatalf("point %d: replica %d covers it %d times, want %d (owner %d)", i, rep, n, want, owner)
			}
		}
	}
}

func TestRingSingleReplicaOwnsFullRing(t *testing.T) {
	r := newRing([]string{"solo"}, 4)
	for i := 0; i < 50; i++ {
		if got := r.points[r.ownerAt(testPoint(i))].idx; got != 0 {
			t.Fatalf("single-replica ring routed point %d to %d", i, got)
		}
	}
	// Merged coverage across its arcs must be the whole ring.
	arcs := r.arcs(0)
	if len(arcs) != 4 {
		t.Fatalf("got %d arcs, want 4", len(arcs))
	}
}
