package fleet

import (
	"sort"
	"sync"
	"time"
)

// latencySamples bounds the tracker's ring buffer: enough history for
// a stable p95, small enough that the fleet adapts to a latency regime
// change within a few hundred requests.
const latencySamples = 256

// latencyTracker keeps a sliding window of successful request
// latencies and answers "what delay should trigger a hedge": the p95,
// clamped to a configured band so a cold tracker (or a pathological
// window) never hedges instantly or never at all.
type latencyTracker struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	n       int // filled count, up to latencySamples
	next    int // write cursor
}

// observe records one successful request's latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencySamples
	if t.n < latencySamples {
		t.n++
	}
}

// p95 returns the current 95th-percentile latency clamped to
// [min, max]. With fewer than a handful of samples it returns max —
// hedging waits until there is evidence of what "slow" means.
func (t *latencyTracker) p95(min, max time.Duration) time.Duration {
	t.mu.Lock()
	n := t.n
	buf := make([]time.Duration, n)
	copy(buf, t.samples[:n])
	t.mu.Unlock()
	if n < 8 {
		return max
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	p := buf[(n*95)/100]
	if p < min {
		return min
	}
	if p > max {
		return max
	}
	return p
}
