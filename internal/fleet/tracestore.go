package fleet

import (
	"sync"

	"pesto/internal/obs"
)

// Hop is one backend attempt the router made on behalf of a traced
// request: which replica, which failover pass, and why the attempt
// happened (first try, retry, hedge, last resort, warm-sync). Seq is
// the hop's position in the trace — the router derives the attempt's
// X-Request-ID from it (`<traceID>.h<seq>`), which is the key under
// which the serving replica retains the attempt's span dump.
type Hop struct {
	Seq       int    `json:"seq"`
	Replica   string `json:"replica"`
	Pass      int    `json:"pass"`
	Kind      string `json:"kind"` // first | retry | hedge | last-resort | warm-sync
	RequestID string `json:"requestId"`
	StartNs   int64  `json:"startNs"`
	EndNs     int64  `json:"endNs"`
	Status    int    `json:"status,omitempty"` // 0 = transport failure
	Err       string `json:"err,omitempty"`
	Served    bool   `json:"served,omitempty"` // this hop's response was returned to the client
}

// TraceRecord is the router's account of one traced request: the trace
// identity, the ring owner the first attempt targeted, and every hop
// in begin order.
type TraceRecord struct {
	TraceID string `json:"traceId"`
	Owner   string `json:"owner"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Hops    []Hop  `json:"hops"`
}

// liveTrace is a TraceRecord under construction. Hops begin and end on
// whatever goroutine ran the attempt (hedges race the primary), so all
// access is under the mutex; the store snapshots it the same way.
type liveTrace struct {
	mu   sync.Mutex
	rec  TraceRecord
	tc   obs.TraceContext
	next int // next hop sequence number
}

func newLiveTrace(tc obs.TraceContext, owner, method, path string) *liveTrace {
	return &liveTrace{
		rec:  TraceRecord{TraceID: tc.TraceID, Owner: owner, Method: method, Path: path},
		tc:   tc,
		next: tc.Hop,
	}
}

// beginHop registers the next attempt and returns its sequence number
// plus the trace header and request ID to send with it.
func (lt *liveTrace) beginHop(kind, replica string, pass int, startNs int64) (seq int, header, reqID string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	seq = lt.next
	lt.next++
	reqID = lt.tc.HopRequestID(seq)
	header = obs.TraceContext{TraceID: lt.tc.TraceID, Hop: seq, Parent: lt.tc.Parent}.Header()
	lt.rec.Hops = append(lt.rec.Hops, Hop{
		Seq:       seq,
		Replica:   replica,
		Pass:      pass,
		Kind:      kind,
		RequestID: reqID,
		StartNs:   startNs,
	})
	return seq, header, reqID
}

// endHop records the attempt's outcome. status 0 with a non-empty err
// is a transport failure.
func (lt *liveTrace) endHop(seq int, endNs int64, status int, err error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range lt.rec.Hops {
		if lt.rec.Hops[i].Seq == seq {
			lt.rec.Hops[i].EndNs = endNs
			lt.rec.Hops[i].Status = status
			if err != nil {
				lt.rec.Hops[i].Err = err.Error()
			}
			return
		}
	}
}

// markServed flags the hop whose response went back to the client.
func (lt *liveTrace) markServed(seq int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range lt.rec.Hops {
		lt.rec.Hops[i].Served = lt.rec.Hops[i].Seq == seq
	}
}

// snapshot copies the record (hops included) under the lock, so a
// straggling hedge ending after the request returned cannot race a
// reader.
func (lt *liveTrace) snapshot() TraceRecord {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	rec := lt.rec
	rec.Hops = make([]Hop, len(lt.rec.Hops))
	copy(rec.Hops, lt.rec.Hops)
	return rec
}

// traceStore retains the router's view of the last N traces, keyed by
// trace ID. Same ring discipline as the replicas' span stores: a new
// trace evicts the oldest, a repeated ID overwrites in place.
type traceStore struct {
	mu    sync.Mutex
	byID  map[string]*liveTrace
	order []string
	limit int
}

func newTraceStore(limit int) *traceStore {
	if limit <= 0 {
		limit = 1024
	}
	return &traceStore{byID: make(map[string]*liveTrace), limit: limit}
}

func (ts *traceStore) put(lt *liveTrace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	id := lt.rec.TraceID
	if _, ok := ts.byID[id]; !ok {
		for len(ts.order) >= ts.limit {
			delete(ts.byID, ts.order[0])
			ts.order = ts.order[1:]
		}
		ts.order = append(ts.order, id)
	}
	ts.byID[id] = lt
}

func (ts *traceStore) get(id string) (*liveTrace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	lt, ok := ts.byID[id]
	return lt, ok
}
