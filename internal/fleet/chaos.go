package fleet

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pesto/internal/fault"
)

// ChaosBackend wraps a Backend with a deterministic service-tier fault
// injector: kills turn every request into ErrReplicaDown, probe
// blackholes eat /healthz only (traffic still flows — the
// detection-vs-reality divergence), and latency spikes delay answers.
// Time is an injected elapsed-clock function, so the chaos harness
// advances a virtual clock between phases and the whole schedule
// replays from (spec, seed) alone; production-shaped soak tests pass
// time.Since(start).
type ChaosBackend struct {
	inj   *fault.FleetInjector
	clock func() time.Duration
	// sleep realizes latency spikes; nil means no delay is actually
	// waited (virtual-clock runs want the routing consequences of a
	// slow replica, not wall-clock waste). Tests exercising hedging
	// pass a real sleep.
	sleep func(ctx context.Context, d time.Duration) error

	mu    sync.Mutex
	inner Backend
}

// NewChaosBackend wraps inner under the injector and elapsed clock.
func NewChaosBackend(inner Backend, inj *fault.FleetInjector, clock func() time.Duration) *ChaosBackend {
	return &ChaosBackend{inner: inner, inj: inj, clock: clock}
}

// SetSleep installs a real delay function for latency spikes.
func (c *ChaosBackend) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	c.sleep = sleep
}

// Replace swaps the wrapped backend — the harness's "restart": a
// killed replica coming back as a fresh process is modeled by swapping
// in a new service.Server with an empty cache, which is exactly what
// makes warm-sync measurable.
func (c *ChaosBackend) Replace(inner Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner = inner
}

func (c *ChaosBackend) current() Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner
}

// ID implements Backend.
func (c *ChaosBackend) ID() string { return c.current().ID() }

// Do implements Backend under the fault schedule.
func (c *ChaosBackend) Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	id := c.ID()
	t := c.clock()
	if c.inj.Killed(id, t) {
		return nil, fmt.Errorf("%w: %s killed at %v", ErrReplicaDown, id, t)
	}
	if method == http.MethodGet && path == "/healthz" && c.inj.Blackholed(id, t) {
		return nil, fmt.Errorf("%w: probe to %s blackholed at %v", ErrReplicaDown, id, t)
	}
	if extra := c.inj.ExtraLatency(id, t); extra > 0 && c.sleep != nil {
		if err := c.sleep(ctx, extra); err != nil {
			return nil, err
		}
	}
	return c.current().Do(ctx, method, path, hdr, body)
}
