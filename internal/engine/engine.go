// Package engine owns concurrency for the Pesto stack: a bounded
// worker pool plus a task/result abstraction with context cancellation
// and a deterministic merge step.
//
// Every layer that fans work out — warm-start candidate evaluation and
// refinement moves in internal/placement, LP relaxations of independent
// branch-and-bound children in internal/ilp, sweep cells and per-model
// rows in internal/experiments — submits closures through a Pool and
// receives the results in submission order. All algorithmic decisions
// (pruning, incumbent updates, picking the best candidate) happen on
// the merged, ordered result slice, never inside the workers, so a
// fixed seed yields byte-identical output regardless of the worker
// count. The pool only changes how fast the answer arrives, never what
// the answer is.
package engine

import (
	"context"
	"runtime"
	"sync"

	"pesto/internal/obs"
)

// Pool is a bounded worker pool. The zero Pool and the nil Pool are
// both valid and run everything inline on the calling goroutine
// (sequential mode), which keeps call sites free of nil checks and
// makes "workers=1" a true no-goroutine baseline.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 means GOMAXPROCS, the "size by the hardware" default.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency bound. A nil or zero pool reports 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Task produces one value. Tasks must be pure with respect to shared
// state: they may read shared inputs but must write only to their own
// return value, because they run concurrently with their siblings.
type Task[R any] func(ctx context.Context) (R, error)

// Result pairs one task's output with its error, in submission order.
type Result[R any] struct {
	Value R
	Err   error
}

// Run executes the tasks through the pool and returns their results
// indexed exactly like the input slice. Per-task errors are recorded
// in the corresponding Result; Run itself fails only when ctx is
// cancelled (or its deadline passes), in which case unstarted tasks
// are skipped and the context error is returned.
func Run[R any](ctx context.Context, p *Pool, tasks []Task[R]) ([]Result[R], error) {
	// Fan-out accounting: one batch per Run, one task per closure. The
	// counters expose how much work the solver layers push through the
	// pool; a nil recorder makes both calls free.
	rec := obs.From(ctx)
	rec.Add("engine.batches", 1)
	rec.Add("engine.tasks", int64(len(tasks)))
	out := make([]Result[R], len(tasks))
	w := p.Workers()
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		// Inline fast path: no goroutines, identical results.
		for i, t := range tasks {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i].Value, out[i].Err = t(ctx)
		}
		return out, ctx.Err()
	}
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range tasks {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i].Value, out[i].Err = tasks[i](ctx)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// Map fans fn out over the index range [0, n) and returns the results
// in index order — the common "evaluate n independent candidates"
// shape. Cancellation semantics match Run.
func Map[R any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (R, error)) ([]Result[R], error) {
	tasks := make([]Task[R], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func(ctx context.Context) (R, error) { return fn(ctx, i) }
	}
	return Run(ctx, p, tasks)
}
