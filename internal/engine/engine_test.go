package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		res, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range res {
			if r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: res[%d] = (%d, %v), want (%d, nil)", workers, i, r.Value, r.Err, i*i)
			}
		}
	}
}

func TestMapRecordsPerTaskErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Map(context.Background(), New(4), 10, func(_ context.Context, i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("task %d: %w", i, boom)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		wantErr := i%3 == 0
		if (r.Err != nil) != wantErr {
			t.Errorf("res[%d].Err = %v, want error=%v", i, r.Err, wantErr)
		}
		if wantErr && !errors.Is(r.Err, boom) {
			t.Errorf("res[%d].Err = %v, want wrapped boom", i, r.Err)
		}
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	tasks := make([]Task[int], 1000)
	for i := range tasks {
		tasks[i] = func(context.Context) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return 0, nil
		}
	}
	_, err := Run(ctx, New(2), tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop submission: %d tasks started", n)
	}
}

func TestRunHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	tasks := make([]Task[int], 10000)
	for i := range tasks {
		tasks[i] = func(context.Context) (int, error) {
			time.Sleep(time.Millisecond)
			return 0, nil
		}
	}
	_, err := Run(ctx, New(2), tasks)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestNilAndZeroPoolRunInline(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", nilPool.Workers())
	}
	res, err := Map(context.Background(), nilPool, 5, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(res) != 5 {
		t.Fatalf("nil pool Map: %v (%d results)", err, len(res))
	}
	zero := &Pool{}
	if zero.Workers() != 1 {
		t.Fatalf("zero pool workers = %d, want 1", zero.Workers())
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("workers = %d, want 7", w)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	tasks := make([]Task[int], 64)
	for i := range tasks {
		tasks[i] = func(context.Context) (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		}
	}
	if _, err := Run(context.Background(), New(3), tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds pool bound 3", p)
	}
}
