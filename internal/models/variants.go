package models

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// Variant names one of the eleven model variants of §5.2 and knows how
// to build its graph. Memory targets are calibrated so the paper's
// fits/doesn't-fit facts hold on 16 GB GPUs: only RNNLM-2-2048 and
// NMT-2-1024 fit on a single GPU, and the NASNet-4-212 / NASNet-6-168
// footprints are large enough that the Expert strategy's unbalanced
// split OOMs while a balanced split fits.
type Variant struct {
	// Name is the paper's variant label, e.g. "RNNLM-2-2048".
	Name string
	// Family is the model family ("rnnlm", "nmt", "transformer",
	// "nasnet").
	Family string
	// Branchy marks families whose Expert strategy splits parallel
	// branches (NASNet) rather than layers.
	Branchy bool
	// Build constructs the graph.
	Build func() (*graph.Graph, error)
}

const gib = int64(1) << 30

// PaperVariants returns the eleven variants of Figure 7 at full scale.
func PaperVariants() []Variant {
	return []Variant{
		{Name: "RNNLM-2-2048", Family: "rnnlm", Build: func() (*graph.Graph, error) {
			return RNNLM(RNNLMConfig{Layers: 2, Hidden: 2048, Batch: 128, TargetMemory: 12 * gib})
		}},
		{Name: "RNNLM-4-2048", Family: "rnnlm", Build: func() (*graph.Graph, error) {
			return RNNLM(RNNLMConfig{Layers: 4, Hidden: 2048, Batch: 128, TargetMemory: 22 * gib})
		}},
		{Name: "RNNLM-16-1024", Family: "rnnlm", Build: func() (*graph.Graph, error) {
			return RNNLM(RNNLMConfig{Layers: 16, Hidden: 1024, Batch: 128, TargetMemory: 24 * gib})
		}},
		{Name: "NMT-2-1024", Family: "nmt", Build: func() (*graph.Graph, error) {
			return NMT(NMTConfig{Layers: 2, Hidden: 1024, Batch: 128, TargetMemory: 13 * gib})
		}},
		{Name: "NMT-4-1024", Family: "nmt", Build: func() (*graph.Graph, error) {
			return NMT(NMTConfig{Layers: 4, Hidden: 1024, Batch: 128, TargetMemory: 22 * gib})
		}},
		{Name: "Transformer-10-8-1024", Family: "transformer", Build: func() (*graph.Graph, error) {
			return Transformer(TransformerConfig{Layers: 10, Heads: 8, Hidden: 1024, Batch: 32, TargetMemory: 20 * gib})
		}},
		{Name: "Transformer-12-8-1024", Family: "transformer", Build: func() (*graph.Graph, error) {
			return Transformer(TransformerConfig{Layers: 12, Heads: 8, Hidden: 1024, Batch: 32, TargetMemory: 24 * gib})
		}},
		{Name: "Transformer-6-16-2048", Family: "transformer", Build: func() (*graph.Graph, error) {
			return Transformer(TransformerConfig{Layers: 6, Heads: 16, Hidden: 2048, Batch: 32, TargetMemory: 26 * gib})
		}},
		{Name: "NASNet-4-212", Family: "nasnet", Branchy: true, Build: func() (*graph.Graph, error) {
			return NASNet(NASNetConfig{Cells: 4, Filters: 212, Batch: 32, TargetMemory: 29 * gib})
		}},
		{Name: "NASNet-6-148", Family: "nasnet", Branchy: true, Build: func() (*graph.Graph, error) {
			return NASNet(NASNetConfig{Cells: 6, Filters: 148, Batch: 32, TargetMemory: 22 * gib})
		}},
		{Name: "NASNet-6-168", Family: "nasnet", Branchy: true, Build: func() (*graph.Graph, error) {
			return NASNet(NASNetConfig{Cells: 6, Filters: 168, Batch: 32, TargetMemory: 30 * gib})
		}},
	}
}

// SmallVariants returns scaled-down counterparts (short unrolls, few
// layers) for fast tests, preserving each family's structure and the
// same fits/doesn't-fit pattern against 16 GB GPUs.
func SmallVariants() []Variant {
	return []Variant{
		{Name: "RNNLM-small", Family: "rnnlm", Build: func() (*graph.Graph, error) {
			return RNNLM(RNNLMConfig{Layers: 2, Hidden: 512, Batch: 32, SeqLen: 6, Vocab: 2000, TargetMemory: 4 * gib})
		}},
		{Name: "NMT-small", Family: "nmt", Build: func() (*graph.Graph, error) {
			return NMT(NMTConfig{Layers: 2, Hidden: 512, Batch: 32, SrcLen: 5, DstLen: 5, Vocab: 4000, TargetMemory: 4 * gib})
		}},
		{Name: "Transformer-small", Family: "transformer", Build: func() (*graph.Graph, error) {
			return Transformer(TransformerConfig{Layers: 2, Heads: 4, Hidden: 256, Batch: 8, SeqLen: 8, Vocab: 4000, TargetMemory: 4 * gib})
		}},
		{Name: "NASNet-small", Family: "nasnet", Branchy: true, Build: func() (*graph.Graph, error) {
			return NASNet(NASNetConfig{Cells: 2, Filters: 32, Batch: 8, Spatial: 8, TargetMemory: 4 * gib})
		}},
	}
}

// FindVariant looks a variant up by name across PaperVariants and
// SmallVariants.
func FindVariant(name string) (Variant, error) {
	for _, v := range append(PaperVariants(), SmallVariants()...) {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("unknown model variant %q", name)
}

// ToyFigure2 builds the illustrative DAG of Figure 2: a source A, two
// hop-deep chains of light operations (s1..s9 and d1..d9, 17µs each), a
// two-stage heavy pipeline F → G (150µs each), and a sink H. A
// critical-path-by-hops scheduler (Figure 2(b)'s "naive scheduling ...
// without knowing the compute requirements") runs the deep light chains
// before F, stalling the heavy pipeline and the downstream GPU; the
// optimal schedule of Figure 2(d) starts F and G as early as possible
// and hides the light chains behind them, recovering the paper's quoted
// 22–26%.
func ToyFigure2() (*graph.Graph, error) {
	b := newBuilder(16)
	mem := int64(1) << 20
	mk := func(name string, cost time.Duration) graph.NodeID {
		return b.gpu(name, 1, cost, mem)
	}
	const tb = 4 << 10
	a := mk("A", 10*time.Microsecond)
	chain := func(prefix string) graph.NodeID {
		prev := a
		for i := 1; i <= 9; i++ {
			cur := mk(fmt.Sprintf("%s%d", prefix, i), 17*time.Microsecond)
			b.edge(prev, cur, tb)
			prev = cur
		}
		return prev
	}
	sEnd := chain("s")
	dEnd := chain("d")
	f := mk("F", 150*time.Microsecond)
	b.edge(a, f, tb)
	g := mk("G", 150*time.Microsecond)
	b.edge(f, g, tb)
	out := mk("H", 10*time.Microsecond)
	b.edge(sEnd, out, tb)
	b.edge(dEnd, out, tb)
	b.edge(g, out, tb)
	return b.finish("toy-figure2")
}
