package models

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// NMTConfig parameterizes the Neural Machine Translation model with
// attention [Bahdanau et al.; Wu et al.] the paper trains on WMT16:
// stacked-LSTM encoder and decoder plus a per-decoder-step attention
// mechanism (§5.2: 2- and 4-layer variants, 1024 hidden units,
// batch 128).
type NMTConfig struct {
	// Layers is the number of LSTM layers in encoder and decoder each.
	Layers int
	// Hidden is the LSTM hidden size (paper: 1024).
	Hidden int
	// Batch is the training batch size (paper: 128).
	Batch int
	// SrcLen/DstLen are the unrolled source and target lengths; zero
	// means 30 each.
	SrcLen, DstLen int
	// Vocab is the target vocabulary; zero means 32000.
	Vocab int
	// TargetMemory calibrates the total footprint; zero keeps raw.
	TargetMemory int64
}

func (c NMTConfig) withDefaults() NMTConfig {
	if c.SrcLen == 0 {
		c.SrcLen = 30
	}
	if c.DstLen == 0 {
		c.DstLen = 30
	}
	if c.Vocab == 0 {
		c.Vocab = 32000
	}
	if c.Batch == 0 {
		c.Batch = 128
	}
	return c
}

// NMT builds the forward+backward training graph of one NMT step. The
// encoder and decoder are LSTM grids like RNNLM's; every decoder step
// additionally runs attention over the encoder memory, which is what
// makes NMT "far more complex" (§5.2) and gives Pesto the staggered-
// communication wins of §5.3.
func NMT(cfg NMTConfig) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Layers < 1 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("nmt: invalid config %+v", cfg)
	}
	B, H, L := cfg.Batch, cfg.Hidden, cfg.Layers
	Ts, Td := cfg.SrcLen, cfg.DstLen
	rcfg := RNNLMConfig{Layers: L, Hidden: H, Batch: B, SeqLen: Ts}
	b := newBuilder(L * (Ts + Td) * 40)
	hBytes := tensorBytes(B * H)

	input := b.cpu("input_pipeline", 0, 80*time.Microsecond)

	// --- Encoder grid (layers 1..L).
	encH := make([][]graph.NodeID, L+1)
	encC := make([][]graph.NodeID, L+1)
	for l := range encH {
		encH[l] = make([]graph.NodeID, Ts)
		encC[l] = make([]graph.NodeID, Ts)
	}
	for t := 0; t < Ts; t++ {
		emb := b.gpu(fmt.Sprintf("enc/embed/t%d", t), 1, elemwiseCost(B*H), tensorBytes(B*H))
		b.edge(input, emb, tensorBytes(B))
		encH[0][t] = emb
	}
	for l := 1; l <= L; l++ {
		for t := 0; t < Ts; t++ {
			inputs := []graph.NodeID{encH[l-1][t]}
			if t > 0 {
				inputs = append(inputs, encH[l][t-1], encC[l][t-1])
			}
			h, c := lstmCell(b, fmt.Sprintf("enc/l%d/t%d", l, t), l, rcfg, inputs, hBytes, 1)
			encH[l][t], encC[l][t] = h, c
		}
	}
	// Encoder memory: gathers the top-layer states once; attention
	// reads stream slices of it (we model per-step reads at B×H rather
	// than B×Ts×H because TensorFlow deduplicates the memory tensor's
	// transfer per device).
	encMem := b.gpu("enc/memory_concat", L, elemwiseCost(B*Ts*H), tensorBytes(B*Ts*H))
	for t := 0; t < Ts; t++ {
		b.edge(encH[L][t], encMem, hBytes)
	}

	// --- Decoder grid with attention (layers L+1..2L; the paper's
	// Expert places attention and softmax with the last LSTM layer,
	// which contiguous layer blocks reproduce).
	decH := make([][]graph.NodeID, L+1)
	decC := make([][]graph.NodeID, L+1)
	for l := range decH {
		decH[l] = make([]graph.NodeID, Td)
		decC[l] = make([]graph.NodeID, Td)
	}
	for t := 0; t < Td; t++ {
		emb := b.gpu(fmt.Sprintf("dec/embed/t%d", t), L+1, elemwiseCost(B*H), tensorBytes(B*H))
		b.edge(input, emb, tensorBytes(B))
		decH[0][t] = emb
	}
	// Column-major order: attention output of step t-1 feeds step t's
	// first layer ("input feeding" in the GNMT architecture).
	attnLayer := 2 * L
	attnOut := make([]graph.NodeID, Td)
	for t := 0; t < Td; t++ {
		for l := 1; l <= L; l++ {
			inputs := []graph.NodeID{decH[l-1][t]}
			if t > 0 {
				inputs = append(inputs, decH[l][t-1], decC[l][t-1])
			}
			if l == 1 && t > 0 {
				inputs = append(inputs, attnOut[t-1]) // input feeding
			}
			h, c := lstmCell(b, fmt.Sprintf("dec/l%d/t%d", l, t), L+l, rcfg, inputs, hBytes, 1)
			decH[l][t], decC[l][t] = h, c
			if l == L {
				attnOut[t] = attention(b, fmt.Sprintf("attn/t%d", t), attnLayer, B, H, Ts, encMem, h)
			}
		}
	}

	// --- Projection + softmax per decoder step.
	lossLayer := 2*L + 1
	losses := make([]graph.NodeID, Td)
	for t := 0; t < Td; t++ {
		k := b.kernel(fmt.Sprintf("proj/t%d/kernel", t), lossLayer)
		proj := b.gpu(fmt.Sprintf("proj/t%d", t), lossLayer,
			matmulCost(1, B, 2*H, cfg.Vocab/8),
			tensorBytes(B*cfg.Vocab/8)+tensorBytes(H*cfg.Vocab/8)/int64(Td))
		b.edge(k, proj, 64)
		b.edge(attnOut[t], proj, hBytes)
		sm := b.gpu(fmt.Sprintf("softmax/t%d", t), lossLayer, elemwiseCost(B*cfg.Vocab/8), tensorBytes(B*cfg.Vocab/8))
		b.edge(proj, sm, tensorBytes(B*cfg.Vocab/8))
		loss := b.gpu(fmt.Sprintf("loss/t%d", t), lossLayer, elemwiseCost(B), tensorBytes(B))
		b.edge(sm, loss, tensorBytes(B*cfg.Vocab/8))
		losses[t] = loss
	}

	// --- Backward: mirrored decoder then encoder grids (2× costs),
	// condensed to one backward cell per forward cell.
	bwDec := make([]graph.NodeID, Td)
	for t := Td - 1; t >= 0; t-- {
		g := b.gpu(fmt.Sprintf("bw/dec_grad/t%d", t), lossLayer, 2*elemwiseCost(B*cfg.Vocab/8), hBytes)
		b.edge(losses[t], g, tensorBytes(B))
		if t < Td-1 {
			b.edge(bwDec[t+1], g, hBytes)
		}
		bwDec[t] = g
	}
	for l := L; l >= 1; l-- {
		for t := Td - 1; t >= 0; t-- {
			inputs := []graph.NodeID{bwDec[t], decH[l][t], decC[l][t]}
			h, _ := lstmCell(b, fmt.Sprintf("bw/dec/l%d/t%d", l, t), L+l, rcfg, inputs, hBytes, 2)
			bwDec[t] = h
		}
	}
	// Gradient into the encoder flows through the attention memory.
	bwMem := b.gpu("bw/enc_memory_grad", L, 2*elemwiseCost(B*Ts*H), tensorBytes(B*Ts*H))
	for t := 0; t < Td; t++ {
		b.edge(bwDec[t], bwMem, hBytes)
	}
	bwEnc := make([]graph.NodeID, Ts)
	for t := 0; t < Ts; t++ {
		g := b.gpu(fmt.Sprintf("bw/enc_grad/t%d", t), L, elemwiseCost(B*H), hBytes)
		b.edge(bwMem, g, hBytes)
		bwEnc[t] = g
	}
	for l := L; l >= 1; l-- {
		for t := Ts - 1; t >= 0; t-- {
			inputs := []graph.NodeID{bwEnc[t], encH[l][t], encC[l][t]}
			if t < Ts-1 {
				inputs = append(inputs, bwEnc[t+1])
			}
			h, _ := lstmCell(b, fmt.Sprintf("bw/enc/l%d/t%d", l, t), l, rcfg, inputs, hBytes, 2)
			bwEnc[t] = h
		}
	}
	// Weight updates, one per encoder/decoder layer.
	gradBytes := tensorBytes(8 * H * H)
	for l := 1; l <= L; l++ {
		applyE := b.gpu(fmt.Sprintf("apply_grad/enc_l%d", l), l, elemwiseCost(8*H*H/64), gradBytes)
		b.edge(bwEnc[0], applyE, gradBytes)
		applyD := b.gpu(fmt.Sprintf("apply_grad/dec_l%d", l), L+l, elemwiseCost(8*H*H/64), gradBytes)
		b.edge(bwDec[0], applyD, gradBytes)
	}

	g, err := b.finish("nmt")
	if err != nil {
		return nil, err
	}
	scaleMemory(g, cfg.TargetMemory)
	return g, nil
}

// attention emits a Bahdanau-style attention block for one decoder
// step: scores, softmax, context, and the combined output projection.
func attention(b *builder, name string, layer, B, H, Ts int, encMem, query graph.NodeID) graph.NodeID {
	k := b.kernel(name+"/kernel", layer)
	scores := b.gpu(name+"/scores", layer, matmulCost(1, B, H, Ts), tensorBytes(B*Ts))
	b.edge(k, scores, 64)
	b.edge(encMem, scores, tensorBytes(B*H))
	b.edge(query, scores, tensorBytes(B*H))
	sm := b.gpu(name+"/softmax", layer, elemwiseCost(B*Ts), tensorBytes(B*Ts))
	b.edge(scores, sm, tensorBytes(B*Ts))
	ctx := b.gpu(name+"/context", layer, matmulCost(1, B, Ts, H), tensorBytes(B*H))
	b.edge(sm, ctx, tensorBytes(B*Ts))
	b.edge(encMem, ctx, tensorBytes(B*H))
	out := b.gpu(name+"/proj", layer, matmulCost(1, B, 2*H, H), tensorBytes(B*H))
	b.edge(ctx, out, tensorBytes(B*H))
	b.edge(query, out, tensorBytes(B*H))
	return out
}
