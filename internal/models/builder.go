// Package models generates synthetic but structurally faithful
// computation graphs for the four giant DNN families the Pesto paper
// evaluates (§5.2): RNNLM, NMT, Transformer and NASNet, plus the toy
// DAG of Figure 2. The generators reproduce the properties the paper's
// results hinge on — LSTM grids for RNNLM/NMT, attention fan-out for
// Transformer, parallel branches for NASNet, an op-size distribution
// dominated by sub-10µs operations (Table 1), and memory footprints
// that make the large variants exceed a single 16 GB GPU.
//
// Operation compute costs follow simple roofline models of a V100-class
// GPU (matmuls at ~12 TFLOP/s, elementwise ops at ~900 GB/s, both with
// fixed launch overheads); tensor sizes on edges are exact 4-byte
// element counts. Memory footprints are calibrated per variant so the
// fits/doesn't-fit facts of §5.2 hold (see Variant.TargetMemory).
package models

import (
	"fmt"
	"math"
	"time"

	"pesto/internal/graph"
)

// Hardware-model constants for op-cost estimation.
const (
	matmulFlops   = 12e12 // effective matmul throughput, FLOP/s
	memBandwidth  = 9e11  // effective memory bandwidth, B/s
	launchLatency = 4 * time.Microsecond
	smallLatency  = 2 * time.Microsecond
	bytesPerElem  = 4
)

// matmulCost models a batched (b×m×k)·(k×n) matrix multiplication.
func matmulCost(b, m, k, n int) time.Duration {
	flops := 2 * float64(b) * float64(m) * float64(k) * float64(n)
	return launchLatency + time.Duration(flops/matmulFlops*1e9)
}

// elemwiseCost models an elementwise op over n elements.
func elemwiseCost(n int) time.Duration {
	bytes := 3 * float64(n) * bytesPerElem // read×2 + write
	return smallLatency + time.Duration(bytes/memBandwidth*1e9)
}

// tensorBytes is the wire size of an n-element fp32 tensor.
func tensorBytes(n int) int64 { return int64(n) * bytesPerElem }

// builder accumulates a graph, deferring error checks to Finish so
// generator code stays linear.
type builder struct {
	g   *graph.Graph
	err error
}

func newBuilder(hint int) *builder {
	return &builder{g: graph.New(hint)}
}

// op adds a node and returns its ID.
func (b *builder) op(n graph.Node) graph.NodeID {
	if n.Layer == 0 {
		n.Layer = -1
	}
	return b.g.AddNode(n)
}

// gpu adds a GPU compute op.
func (b *builder) gpu(name string, layer int, cost time.Duration, mem int64) graph.NodeID {
	return b.g.AddNode(graph.Node{Name: name, Kind: graph.KindGPU, Cost: cost, Memory: mem, Layer: layer})
}

// gpuBranch adds a GPU op tagged with a parallel-branch index.
func (b *builder) gpuBranch(name string, layer, branch int, cost time.Duration, mem int64) graph.NodeID {
	return b.g.AddNode(graph.Node{Name: name, Kind: graph.KindGPU, Cost: cost, Memory: mem, Layer: layer, Branch: branch})
}

// cpu adds a CPU op.
func (b *builder) cpu(name string, layer int, cost time.Duration) graph.NodeID {
	return b.g.AddNode(graph.Node{Name: name, Kind: graph.KindCPU, Cost: cost, Layer: layer})
}

// kernel adds a small CPU-side kernel-launch op (§3.2.1's O_K).
func (b *builder) kernel(name string, layer int) graph.NodeID {
	return b.g.AddNode(graph.Node{Name: name, Kind: graph.KindKernel, Cost: time.Microsecond, Layer: layer})
}

// edge records a data dependency.
func (b *builder) edge(from, to graph.NodeID, bytes int64) {
	if b.err != nil {
		return
	}
	if err := b.g.AddEdge(from, to, bytes); err != nil {
		b.err = err
	}
}

// dep records a control dependency (no data).
func (b *builder) dep(from, to graph.NodeID) { b.edge(from, to, 0) }

// finish validates and returns the graph.
func (b *builder) finish(name string) (*graph.Graph, error) {
	if b.err != nil {
		return nil, fmt.Errorf("build %s: %w", name, b.err)
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("build %s: %w", name, err)
	}
	return b.g, nil
}

// scaleMemory rescales all node memory footprints so their sum equals
// target — the per-variant calibration that reproduces the paper's
// fits/doesn't-fit facts without modelling TensorFlow's allocator.
func scaleMemory(g *graph.Graph, target int64) {
	if target <= 0 {
		return
	}
	total := g.TotalMemory()
	if total <= 0 {
		return
	}
	f := float64(target) / float64(total)
	for _, nd := range g.Nodes() {
		_ = g.SetMemory(nd.ID, int64(math.Round(float64(nd.Memory)*f)))
	}
}
