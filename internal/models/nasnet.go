package models

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// NASNetConfig parameterizes the NASNet CNN [Zoph et al.] the paper
// trains on ImageNet (§5.2: 4 cells × 212 filters, 6 × 148, 6 × 168,
// batch 32). Each cell is composed of parallel branches of separable
// convolutions and poolings — "providing an opportunity for parallel
// execution", which the branch-splitting Expert and Pesto both exploit.
type NASNetConfig struct {
	// Cells is the number of normal cells.
	Cells int
	// Filters is the filter count per cell.
	Filters int
	// Batch is images per batch (paper: 32).
	Batch int
	// Spatial is the feature-map side length; zero means 28.
	Spatial int
	// BlocksPerCell is the number of two-branch blocks per cell; zero
	// means 5 (the NASNet-A cell).
	BlocksPerCell int
	// TargetMemory calibrates the total footprint; zero keeps raw.
	TargetMemory int64
}

func (c NASNetConfig) withDefaults() NASNetConfig {
	if c.Spatial == 0 {
		c.Spatial = 28
	}
	if c.BlocksPerCell == 0 {
		c.BlocksPerCell = 5
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	return c
}

// NASNet builds the forward+backward training graph: a stem, Cells
// normal cells (each 5 blocks × 2 branches of separable convolutions),
// reduction cells between thirds, and the classifier head. Branch
// operations carry Branch tags so the Expert strategy can split them
// across GPUs; the untagged stem/concat/classifier ops are what
// unbalance Expert's memory footprint on the large variants (Figure 7's
// OOMs).
func NASNet(cfg NASNetConfig) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Cells < 1 || cfg.Filters < 1 {
		return nil, fmt.Errorf("nasnet: invalid config %+v", cfg)
	}
	B, S, F := cfg.Batch, cfg.Spatial, cfg.Filters
	b := newBuilder(cfg.Cells * cfg.BlocksPerCell * 30)

	mapElems := B * S * S * F
	mapBytes := tensorBytes(mapElems)

	input := b.cpu("input_pipeline", 0, 120*time.Microsecond)
	stem := b.gpu("stem_conv", 1, matmulCost(1, B*S*S, 27, F), tensorBytes(mapElems))
	b.edge(input, stem, tensorBytes(B*S*S*3))

	prev := stem
	layer := 1
	fwCellOuts := make([]graph.NodeID, 0, cfg.Cells)
	for c := 0; c < cfg.Cells; c++ {
		layer++
		prev = nasnetCell(b, fmt.Sprintf("cell%d", c), layer, cfg, prev, 1)
		fwCellOuts = append(fwCellOuts, prev)
		// A reduction cell after each third of the normal cells.
		if cfg.Cells >= 3 && (c+1)%(cfg.Cells/3+1) == 0 {
			layer++
			red := b.gpu(fmt.Sprintf("reduction%d", c), layer, matmulCost(1, B*S*S/4, F, F), tensorBytes(mapElems/2))
			b.edge(prev, red, mapBytes)
			prev = red
		}
	}

	layer++
	gap := b.gpu("global_avg_pool", layer, elemwiseCost(mapElems), tensorBytes(B*F))
	b.edge(prev, gap, mapBytes)
	fc := b.gpu("classifier", layer, matmulCost(1, B, F, 1000), tensorBytes(B*1000)+tensorBytes(F*1000))
	b.edge(gap, fc, tensorBytes(B*F))
	loss := b.gpu("loss", layer, elemwiseCost(B*1000), tensorBytes(B))
	b.edge(fc, loss, tensorBytes(B*1000))

	// Backward: one mirrored cell per forward cell at 2× cost.
	grad := b.gpu("bw/loss_grad", layer, 2*elemwiseCost(B*1000), tensorBytes(B*F))
	b.edge(loss, grad, tensorBytes(B))
	bwLayer := layer
	for c := cfg.Cells - 1; c >= 0; c-- {
		g2 := nasnetCell(b, fmt.Sprintf("bw/cell%d", c), bwLayer, cfg, grad, 2)
		// Activation reuse from the forward cell.
		b.edge(fwCellOuts[c], g2, mapBytes)
		grad = g2
		bwLayer--
		if bwLayer < 1 {
			bwLayer = 1
		}
	}
	apply := b.gpu("apply_grads", 1, elemwiseCost(mapElems/8), tensorBytes(mapElems/4))
	b.edge(grad, apply, tensorBytes(mapElems/4))

	g, err := b.finish("nasnet")
	if err != nil {
		return nil, err
	}
	scaleMemory(g, cfg.TargetMemory)
	return g, nil
}

// nasnetCell emits one NASNet-A style cell: BlocksPerCell blocks, each
// with two tagged parallel branches joined by an add; block outputs
// concatenate. Branch tags are 1-based and unique within the cell.
func nasnetCell(b *builder, name string, layer int, cfg NASNetConfig, in graph.NodeID, bwScale int) graph.NodeID {
	B, S, F := cfg.Batch, cfg.Spatial, cfg.Filters
	mapElems := B * S * S * F
	mapBytes := tensorBytes(mapElems)
	sc := time.Duration(bwScale)

	concat := b.gpu(name+"/concat", layer, sc*elemwiseCost(mapElems), tensorBytes(mapElems))
	vecBytes := tensorBytes(F)
	tiny := elemwiseCost(F) // per-channel vector ops, the Table 1 <10µs mass
	for blk := 0; blk < cfg.BlocksPerCell; blk++ {
		add := b.gpu(fmt.Sprintf("%s/block%d/add", name, blk), layer, sc*elemwiseCost(mapElems), tensorBytes(mapElems))
		for br := 0; br < 2; br++ {
			branchIdx := blk*2 + br + 1
			bn := fmt.Sprintf("%s/block%d/branch%d", name, blk, br)
			bop := func(suffix string, cost time.Duration, mem int64) graph.NodeID {
				return b.gpuBranch(bn+suffix, layer, branchIdx, cost, mem)
			}
			k := b.kernel(bn+"/kernel", layer)
			// Separable conv: pad + depthwise (bandwidth-bound) + slice
			// + pointwise (matmul-like).
			pad := bop("/pad", sc*tiny, vecBytes)
			b.edge(in, pad, mapBytes)
			dw := bop("/depthwise", sc*elemwiseCost(mapElems*9/4), int64(bwScale)*tensorBytes(mapElems))
			b.edge(k, dw, 64)
			b.edge(pad, dw, mapBytes)
			slc := bop("/slice", sc*tiny, vecBytes)
			b.edge(dw, slc, mapBytes)
			pw := bop("/pointwise", sc*matmulCost(1, B*S*S, F, F), int64(bwScale)*(tensorBytes(mapElems)+tensorBytes(F*F)))
			b.edge(slc, pw, mapBytes)
			// Batch norm decomposed the way TensorFlow's graph shows
			// it: two reductions plus three per-channel vector ops.
			mean := bop("/bn_mean", sc*elemwiseCost(mapElems/8), vecBytes)
			b.edge(pw, mean, mapBytes)
			variance := bop("/bn_var", sc*elemwiseCost(mapElems/8), vecBytes)
			b.edge(pw, variance, mapBytes)
			rsqrt := bop("/bn_rsqrt", sc*tiny, vecBytes)
			b.edge(variance, rsqrt, vecBytes)
			scale := bop("/bn_scale", sc*elemwiseCost(mapElems), tensorBytes(mapElems))
			b.edge(pw, scale, mapBytes)
			b.edge(mean, scale, vecBytes)
			b.edge(rsqrt, scale, vecBytes)
			shift := bop("/bn_shift", sc*tiny, vecBytes)
			b.edge(scale, shift, mapBytes)
			relu := bop("/relu", sc*elemwiseCost(mapElems), tensorBytes(mapElems))
			b.edge(shift, relu, mapBytes)
			b.edge(relu, add, mapBytes)
			// Optimizer bookkeeping for the branch's two weight
			// tensors (momentum read/update/apply), tiny ops.
			opt := pad
			for _, s := range []string{"/opt_read", "/opt_mom", "/opt_apply"} {
				o := bop(s, sc*tiny, vecBytes)
				b.edge(opt, o, vecBytes)
				opt = o
			}
		}
		b.edge(add, concat, mapBytes)
	}
	return concat
}
