package models

import (
	"strings"
	"testing"
	"time"

	"pesto/internal/graph"
)

func buildVariant(t *testing.T, v Variant) *graph.Graph {
	t.Helper()
	g, err := v.Build()
	if err != nil {
		t.Fatalf("%s: %v", v.Name, err)
	}
	return g
}

func TestAllPaperVariantsBuildValidDAGs(t *testing.T) {
	for _, v := range PaperVariants() {
		g := buildVariant(t, v)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", v.Name, err)
		}
		if g.NumNodes() < 200 {
			t.Errorf("%s: suspiciously small graph (%d nodes)", v.Name, g.NumNodes())
		}
		if len(g.Roots()) == 0 || len(g.Leaves()) == 0 {
			t.Errorf("%s: missing roots or leaves", v.Name)
		}
	}
}

func TestSmallVariantsBuild(t *testing.T) {
	for _, v := range SmallVariants() {
		g := buildVariant(t, v)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}

func TestMemoryCalibration(t *testing.T) {
	// §5.2: only RNNLM-2-2048 and NMT-2-1024 fit on one 16 GB GPU.
	const gpu = 16 << 30
	fits := map[string]bool{"RNNLM-2-2048": true, "NMT-2-1024": true}
	for _, v := range PaperVariants() {
		g := buildVariant(t, v)
		total := g.TotalMemory()
		if fits[v.Name] {
			if total > gpu {
				t.Errorf("%s: %d bytes should fit one GPU", v.Name, total)
			}
		} else {
			if total <= gpu {
				t.Errorf("%s: %d bytes should exceed one GPU", v.Name, total)
			}
			if total > 2*gpu {
				t.Errorf("%s: %d bytes cannot fit two GPUs at all", v.Name, total)
			}
		}
	}
}

func TestTable1ShapeMostOpsAreSmall(t *testing.T) {
	// Table 1: the <10µs bucket dominates every model.
	for _, v := range PaperVariants() {
		g := buildVariant(t, v)
		small, total := 0, g.NumNodes()
		for _, nd := range g.Nodes() {
			if nd.Cost < 10*time.Microsecond {
				small++
			}
		}
		if float64(small) < 0.5*float64(total) {
			t.Errorf("%s: only %d/%d ops under 10µs; Table 1 expects a majority", v.Name, small, total)
		}
	}
}

func TestRNNLMGridStructure(t *testing.T) {
	g, err := RNNLM(RNNLMConfig{Layers: 2, Hidden: 64, Batch: 4, SeqLen: 4, Vocab: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Find cells and confirm the left-to-right and bottom-to-top
	// dependencies exist through their matmuls.
	ids := map[string]graph.NodeID{}
	for _, nd := range g.Nodes() {
		ids[nd.Name] = nd.ID
	}
	h11, ok1 := ids["fw/l1/t1/matmul"]
	h01, ok2 := ids["fw/l1/t0/h_mul_o"]
	if !ok1 || !ok2 {
		t.Fatal("expected cell ops missing")
	}
	if !g.Reachable(h01, h11) {
		t.Error("cell (1,0) does not feed cell (1,1): temporal dependency missing")
	}
	l2, ok := ids["fw/l2/t0/matmul"]
	if !ok {
		t.Fatal("layer-2 cell missing")
	}
	if !g.Reachable(ids["fw/l1/t0/h_mul_o"], l2) {
		t.Error("layer 1 does not feed layer 2: stacking dependency missing")
	}
	// Backward exists and is reachable from the losses.
	var bwOps int
	for name := range ids {
		if strings.HasPrefix(name, "bw/") {
			bwOps++
		}
	}
	if bwOps == 0 {
		t.Error("no backward operations generated")
	}
}

func TestNMTHasAttentionPerDecoderStep(t *testing.T) {
	g, err := NMT(NMTConfig{Layers: 2, Hidden: 64, Batch: 4, SrcLen: 3, DstLen: 4, Vocab: 100})
	if err != nil {
		t.Fatal(err)
	}
	attn := 0
	for _, nd := range g.Nodes() {
		if strings.HasPrefix(nd.Name, "attn/") && strings.HasSuffix(nd.Name, "/scores") {
			attn++
		}
	}
	if attn != 4 {
		t.Fatalf("attention score ops = %d, want one per decoder step (4)", attn)
	}
}

func TestTransformerHeads(t *testing.T) {
	cfg := TransformerConfig{Layers: 2, Heads: 4, Hidden: 128, Batch: 2, SeqLen: 4, Vocab: 100}
	g, err := Transformer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heads := 0
	for _, nd := range g.Nodes() {
		if strings.HasPrefix(nd.Name, "enc/l1/self_attn/head") && strings.HasSuffix(nd.Name, "/scores") {
			heads++
		}
	}
	if heads != cfg.Heads {
		t.Fatalf("layer-1 self-attention heads = %d, want %d", heads, cfg.Heads)
	}
}

func TestNASNetBranchTags(t *testing.T) {
	g, err := NASNet(NASNetConfig{Cells: 2, Filters: 16, Batch: 2, Spatial: 4})
	if err != nil {
		t.Fatal(err)
	}
	branches := map[int]int{}
	untagged := 0
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		if nd.Branch > 0 {
			branches[nd.Branch]++
		} else {
			untagged++
		}
	}
	if len(branches) != 10 {
		t.Fatalf("distinct branch tags = %d, want 10 (5 blocks × 2 branches)", len(branches))
	}
	if untagged == 0 {
		t.Fatal("expected untagged stem/concat ops")
	}
}

func TestVariantLookup(t *testing.T) {
	if _, err := FindVariant("RNNLM-2-2048"); err != nil {
		t.Errorf("FindVariant: %v", err)
	}
	if _, err := FindVariant("nope"); err == nil {
		t.Error("FindVariant should fail for unknown names")
	}
}

func TestToyFigure2(t *testing.T) {
	g, err := ToyFigure2()
	if err != nil {
		t.Fatal(err)
	}
	// A + two 9-op chains + F + G + H.
	if g.NumNodes() != 22 {
		t.Fatalf("nodes = %d, want 22", g.NumNodes())
	}
	ids := map[string]graph.NodeID{}
	for _, nd := range g.Nodes() {
		ids[nd.Name] = nd.ID
	}
	// The heavy pipeline F -> G must be serial, and independent of the
	// light chains (so a scheduler can hide the chains behind it).
	if !g.Reachable(ids["F"], ids["G"]) {
		t.Error("F must feed G")
	}
	if g.Reachable(ids["s1"], ids["F"]) || g.Reachable(ids["F"], ids["s1"]) {
		t.Error("light chain and heavy pipeline must be parallel")
	}
	// Heavy ops dominate any single chain: the compute-oblivious
	// scheduler's mistake must be expensive.
	f, _ := g.Node(ids["F"])
	s, _ := g.Node(ids["s1"])
	if f.Cost < 5*s.Cost {
		t.Error("F not heavy enough relative to chain ops")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RNNLM(RNNLMConfig{}); err == nil {
		t.Error("zero RNNLM config should fail")
	}
	if _, err := NMT(NMTConfig{}); err == nil {
		t.Error("zero NMT config should fail")
	}
	if _, err := Transformer(TransformerConfig{}); err == nil {
		t.Error("zero Transformer config should fail")
	}
	if _, err := NASNet(NASNetConfig{}); err == nil {
		t.Error("zero NASNet config should fail")
	}
}

func TestScaleMemoryExact(t *testing.T) {
	g, err := RNNLM(RNNLMConfig{Layers: 1, Hidden: 32, Batch: 2, SeqLen: 2, Vocab: 50, TargetMemory: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	total := g.TotalMemory()
	if d := total - (1 << 30); d < -(1<<20) || d > 1<<20 {
		t.Fatalf("calibrated memory %d, want ~1GiB", total)
	}
}
