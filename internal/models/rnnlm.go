package models

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// RNNLMConfig parameterizes the Recurrent Neural Network Language Model
// [Zaremba et al.; Jozefowicz et al.] — stacked LSTM layers unrolled
// over time, trained on Penn Treebank in the paper (§5.2, batch 128).
type RNNLMConfig struct {
	// Layers is the number of stacked LSTM layers (paper: 2, 4, 16).
	Layers int
	// Hidden is the LSTM hidden size (paper: 2048 or 1024).
	Hidden int
	// Batch is the training batch size (paper: 128).
	Batch int
	// SeqLen is the unroll length; zero means 35 (the PTB standard).
	SeqLen int
	// Vocab is the vocabulary size; zero means 10000 (PTB).
	Vocab int
	// TargetMemory calibrates the total memory footprint (bytes); zero
	// keeps the raw activation-based estimate.
	TargetMemory int64
}

func (c RNNLMConfig) withDefaults() RNNLMConfig {
	if c.SeqLen == 0 {
		c.SeqLen = 35
	}
	if c.Vocab == 0 {
		c.Vocab = 10000
	}
	if c.Batch == 0 {
		c.Batch = 128
	}
	return c
}

// lstmCell emits the operation subgraph of one LSTM cell and returns
// the op producing its hidden output and its cell-state output. bwScale
// doubles costs for backward cells.
func lstmCell(b *builder, name string, layer int, cfg RNNLMConfig, inputs []graph.NodeID, inBytes int64, bwScale int) (hidden, cell graph.NodeID) {
	B, H := cfg.Batch, cfg.Hidden
	scale := func(d int64) int64 { return d * int64(bwScale) }
	k := b.kernel(name+"/kernel", layer)
	mm := b.gpu(name+"/matmul", layer,
		matmulCost(1, B, 2*H, 4*H)*time.Duration(bwScale),
		scale(tensorBytes(B*4*H)+tensorBytes(8*H*H)/int64(cfg.SeqLen)))
	b.edge(k, mm, 64)
	for _, in := range inputs {
		b.edge(in, mm, inBytes)
	}
	bias := b.gpu(name+"/bias", layer, elemwiseCost(B*4*H), scale(tensorBytes(B*4*H)))
	b.edge(mm, bias, tensorBytes(B*4*H))
	var gates [4]graph.NodeID
	for gi, gn := range []string{"i", "f", "g", "o"} {
		gates[gi] = b.gpu(name+"/gate_"+gn, layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
		b.edge(bias, gates[gi], tensorBytes(B*H))
	}
	mulF := b.gpu(name+"/c_mul_f", layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
	b.edge(gates[1], mulF, tensorBytes(B*H))
	mulI := b.gpu(name+"/c_mul_i", layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
	b.edge(gates[0], mulI, tensorBytes(B*H))
	b.edge(gates[2], mulI, tensorBytes(B*H))
	cell = b.gpu(name+"/c_add", layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
	b.edge(mulF, cell, tensorBytes(B*H))
	b.edge(mulI, cell, tensorBytes(B*H))
	tanhC := b.gpu(name+"/tanh_c", layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
	b.edge(cell, tanhC, tensorBytes(B*H))
	hidden = b.gpu(name+"/h_mul_o", layer, elemwiseCost(B*H), scale(tensorBytes(B*H)))
	b.edge(tanhC, hidden, tensorBytes(B*H))
	b.edge(gates[3], hidden, tensorBytes(B*H))
	return hidden, cell
}

// RNNLM builds the forward+backward training graph of an RNNLM step:
// an L×T grid of LSTM cells, per-step softmax projection, a mirrored
// backward grid, and per-layer gradient accumulation chains. The grid
// structure is exactly what §5.3 credits Pesto's wins on ("owing to the
// grid like structure of LSTM cells in NMT and RNNLM").
func RNNLM(cfg RNNLMConfig) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Layers < 1 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("rnnlm: invalid config %+v", cfg)
	}
	B, H, L, T := cfg.Batch, cfg.Hidden, cfg.Layers, cfg.SeqLen
	b := newBuilder(L * T * 30)
	hBytes := tensorBytes(B * H)

	input := b.cpu("input_pipeline", 0, 50*time.Microsecond)

	// Forward grid.
	fwH := make([][]graph.NodeID, L+1) // fwH[0] = embeddings
	fwC := make([][]graph.NodeID, L+1)
	for l := range fwH {
		fwH[l] = make([]graph.NodeID, T)
		fwC[l] = make([]graph.NodeID, T)
	}
	for t := 0; t < T; t++ {
		emb := b.gpu(fmt.Sprintf("embed/t%d", t), 1, elemwiseCost(B*H), tensorBytes(B*H))
		b.edge(input, emb, tensorBytes(B))
		fwH[0][t] = emb
	}
	for l := 1; l <= L; l++ {
		for t := 0; t < T; t++ {
			inputs := []graph.NodeID{fwH[l-1][t]}
			if t > 0 {
				inputs = append(inputs, fwH[l][t-1], fwC[l][t-1])
			}
			h, c := lstmCell(b, fmt.Sprintf("fw/l%d/t%d", l, t), l, cfg, inputs, hBytes, 1)
			fwH[l][t], fwC[l][t] = h, c
		}
	}

	// Per-step projection + softmax loss (layer L+1, which the Expert
	// strategy keeps adjacent to the last LSTM layer).
	lossLayer := L + 1
	losses := make([]graph.NodeID, T)
	for t := 0; t < T; t++ {
		k := b.kernel(fmt.Sprintf("proj/t%d/kernel", t), lossLayer)
		proj := b.gpu(fmt.Sprintf("proj/t%d/matmul", t), lossLayer,
			matmulCost(1, B, H, cfg.Vocab),
			tensorBytes(B*cfg.Vocab)+tensorBytes(H*cfg.Vocab)/int64(T))
		b.edge(k, proj, 64)
		b.edge(fwH[L][t], proj, hBytes)
		sm := b.gpu(fmt.Sprintf("softmax/t%d", t), lossLayer, elemwiseCost(B*cfg.Vocab), tensorBytes(B*cfg.Vocab))
		b.edge(proj, sm, tensorBytes(B*cfg.Vocab))
		loss := b.gpu(fmt.Sprintf("loss/t%d", t), lossLayer, elemwiseCost(B), tensorBytes(B))
		b.edge(sm, loss, tensorBytes(B*cfg.Vocab))
		losses[t] = loss
	}

	// Backward grid (right-to-left, top-down), roughly 2× forward cost.
	bwH := make([][]graph.NodeID, L+1)
	for l := range bwH {
		bwH[l] = make([]graph.NodeID, T)
	}
	for t := T - 1; t >= 0; t-- {
		g := b.gpu(fmt.Sprintf("bw/loss_grad/t%d", t), lossLayer, elemwiseCost(B*cfg.Vocab), tensorBytes(B*H))
		b.edge(losses[t], g, tensorBytes(B))
		gm := b.gpu(fmt.Sprintf("bw/proj_grad/t%d", t), lossLayer,
			2*matmulCost(1, B, cfg.Vocab, H), tensorBytes(B*H))
		b.edge(g, gm, tensorBytes(B*cfg.Vocab))
		bwH[L][t] = gm
	}
	for l := L; l >= 1; l-- {
		for t := T - 1; t >= 0; t-- {
			inputs := []graph.NodeID{bwH[l][t]}
			if t < T-1 {
				inputs = append(inputs, bwH[l-1][t+1]) // grad from the right cell
			}
			// Activation reuse from the forward cell.
			inputs = append(inputs, fwH[l][t], fwC[l][t])
			h, _ := lstmCell(b, fmt.Sprintf("bw/l%d/t%d", l, t), l, cfg, inputs, hBytes, 2)
			bwH[l-1][t] = h
		}
	}

	// Per-layer gradient accumulation chains and weight updates.
	gradBytes := tensorBytes(8 * H * H)
	for l := 1; l <= L; l++ {
		var acc graph.NodeID = -1
		for t := 0; t < T; t++ {
			ga := b.gpu(fmt.Sprintf("grad_acc/l%d/t%d", l, t), l, elemwiseCost(B*H), hBytes)
			b.edge(bwH[l-1][t], ga, hBytes)
			if acc >= 0 {
				b.edge(acc, ga, gradBytes/int64(T))
			}
			acc = ga
		}
		apply := b.gpu(fmt.Sprintf("apply_grad/l%d", l), l, elemwiseCost(8*H*H/64), gradBytes)
		b.edge(acc, apply, gradBytes)
	}

	g, err := b.finish("rnnlm")
	if err != nil {
		return nil, err
	}
	scaleMemory(g, cfg.TargetMemory)
	return g, nil
}
