package models

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// TransformerConfig parameterizes the Transformer [Vaswani et al.]
// sequence-to-sequence model the paper trains on WMT14 (§5.2: 10- and
// 12-layer 8-head 1024-hidden variants, and 6-layer 16-head
// 2048-hidden, batch 32 sentences).
type TransformerConfig struct {
	// Layers is the number of encoder layers (the decoder gets the
	// same count).
	Layers int
	// Heads is the number of attention heads.
	Heads int
	// Hidden is the model dimension d_model.
	Hidden int
	// FF is the feed-forward inner size; zero means 4×Hidden.
	FF int
	// Batch is sentences per batch (paper: 32).
	Batch int
	// SeqLen is tokens per sentence; zero means 32.
	SeqLen int
	// Vocab is the shared vocabulary; zero means 32000.
	Vocab int
	// TargetMemory calibrates the total footprint; zero keeps raw.
	TargetMemory int64
}

func (c TransformerConfig) withDefaults() TransformerConfig {
	if c.FF == 0 {
		c.FF = 4 * c.Hidden
	}
	if c.SeqLen == 0 {
		c.SeqLen = 32
	}
	if c.Vocab == 0 {
		c.Vocab = 32000
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	return c
}

// Transformer builds the forward+backward training graph: encoder and
// decoder stacks of multi-head attention + feed-forward blocks (the
// Figure 1 architecture). Per-head score/softmax/context chains give
// some intra-layer parallelism, but the long residual chains make the
// model communication-bound across layer cuts — the reason §5.3 reports
// only moderate (~8%) Pesto gains here.
func Transformer(cfg TransformerConfig) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Layers < 1 || cfg.Heads < 1 || cfg.Hidden < 1 {
		return nil, fmt.Errorf("transformer: invalid config %+v", cfg)
	}
	B, T, H := cfg.Batch, cfg.SeqLen, cfg.Hidden
	tok := B * T
	b := newBuilder(cfg.Layers * cfg.Heads * 24)
	actBytes := tensorBytes(tok * H)

	input := b.cpu("input_pipeline", 0, 60*time.Microsecond)
	embed := b.gpu("embed", 1, elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(input, embed, tensorBytes(tok))
	posEnc := b.gpu("positional_encoding", 1, elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(embed, posEnc, actBytes)

	layerOut := posEnc
	encOuts := make([]graph.NodeID, 0, cfg.Layers)
	for l := 1; l <= cfg.Layers; l++ {
		layerOut = transformerBlock(b, fmt.Sprintf("enc/l%d", l), l, cfg, layerOut, -1, 1)
		encOuts = append(encOuts, layerOut)
	}
	encTop := layerOut

	decIn := b.gpu("dec/embed", cfg.Layers+1, elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(input, decIn, tensorBytes(tok))
	layerOut = decIn
	for l := 1; l <= cfg.Layers; l++ {
		layerOut = transformerBlock(b, fmt.Sprintf("dec/l%d", l), cfg.Layers+l, cfg, layerOut, encTop, 1)
	}

	lossLayer := 2*cfg.Layers + 1
	k := b.kernel("proj/kernel", lossLayer)
	proj := b.gpu("proj", lossLayer, matmulCost(1, tok, H, cfg.Vocab/4), tensorBytes(tok*cfg.Vocab/4))
	b.edge(k, proj, 64)
	b.edge(layerOut, proj, actBytes)
	sm := b.gpu("softmax", lossLayer, elemwiseCost(tok*cfg.Vocab/4), tensorBytes(tok*cfg.Vocab/4))
	b.edge(proj, sm, tensorBytes(tok*cfg.Vocab/4))
	loss := b.gpu("loss", lossLayer, elemwiseCost(tok), tensorBytes(tok))
	b.edge(sm, loss, tensorBytes(tok*cfg.Vocab/4))

	// Backward pass: mirrored blocks at 2× cost, decoder then encoder.
	grad := b.gpu("bw/loss_grad", lossLayer, 2*elemwiseCost(tok*cfg.Vocab/4), actBytes)
	b.edge(loss, grad, tensorBytes(tok))
	for l := cfg.Layers; l >= 1; l-- {
		grad = transformerBlock(b, fmt.Sprintf("bw/dec/l%d", l), cfg.Layers+l, cfg, grad, encTop, 2)
	}
	encGrad := grad
	for l := cfg.Layers; l >= 1; l-- {
		inputs := encGrad
		encGrad = transformerBlock(b, fmt.Sprintf("bw/enc/l%d", l), l, cfg, inputs, -1, 2)
		// Activation reuse from the forward pass.
		b.edge(encOuts[l-1], encGrad, actBytes)
	}
	// Optimizer: one apply op per layer.
	for l := 1; l <= 2*cfg.Layers; l++ {
		paramBytes := tensorBytes(4*H*H + 2*H*cfg.FF)
		apply := b.gpu(fmt.Sprintf("apply_grad/l%d", l), l, elemwiseCost((4*H*H+2*H*cfg.FF)/64), paramBytes)
		b.edge(encGrad, apply, paramBytes/int64(2*cfg.Layers))
	}

	g, err := b.finish("transformer")
	if err != nil {
		return nil, err
	}
	scaleMemory(g, cfg.TargetMemory)
	return g, nil
}

// transformerBlock emits one encoder/decoder block: multi-head (self-)
// attention (+ cross-attention when cross >= 0), residuals, layernorms
// and the feed-forward sublayer. bwScale doubles costs for backward
// blocks. Returns the block output op.
func transformerBlock(b *builder, name string, layer int, cfg TransformerConfig, in graph.NodeID, cross graph.NodeID, bwScale int) graph.NodeID {
	B, T, H := cfg.Batch, cfg.SeqLen, cfg.Hidden
	tok := B * T
	actBytes := tensorBytes(tok * H)
	sc := time.Duration(bwScale)

	out := multiHeadAttention(b, name+"/self_attn", layer, cfg, in, in, bwScale)
	res1 := b.gpu(name+"/residual1", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(in, res1, actBytes)
	b.edge(out, res1, actBytes)
	ln1 := b.gpu(name+"/layernorm1", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(res1, ln1, actBytes)
	cur := ln1

	if cross >= 0 {
		xo := multiHeadAttention(b, name+"/cross_attn", layer, cfg, cur, cross, bwScale)
		resX := b.gpu(name+"/residualX", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
		b.edge(cur, resX, actBytes)
		b.edge(xo, resX, actBytes)
		lnX := b.gpu(name+"/layernormX", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
		b.edge(resX, lnX, actBytes)
		cur = lnX
	}

	k1 := b.kernel(name+"/ffn/kernel1", layer)
	ff1 := b.gpu(name+"/ffn/matmul1", layer, sc*matmulCost(1, tok, H, cfg.FF),
		int64(bwScale)*(tensorBytes(tok*cfg.FF)+tensorBytes(H*cfg.FF)))
	b.edge(k1, ff1, 64)
	b.edge(cur, ff1, actBytes)
	relu := b.gpu(name+"/ffn/relu", layer, sc*elemwiseCost(tok*cfg.FF), tensorBytes(tok*cfg.FF))
	b.edge(ff1, relu, tensorBytes(tok*cfg.FF))
	k2 := b.kernel(name+"/ffn/kernel2", layer)
	ff2 := b.gpu(name+"/ffn/matmul2", layer, sc*matmulCost(1, tok, cfg.FF, H),
		int64(bwScale)*(tensorBytes(tok*H)+tensorBytes(H*cfg.FF)))
	b.edge(k2, ff2, 64)
	b.edge(relu, ff2, tensorBytes(tok*cfg.FF))
	res2 := b.gpu(name+"/residual2", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(cur, res2, actBytes)
	b.edge(ff2, res2, actBytes)
	ln2 := b.gpu(name+"/layernorm2", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
	b.edge(res2, ln2, actBytes)
	return ln2
}

// multiHeadAttention emits the QKV projections, per-head score/softmax/
// context chains, concat and output projection.
func multiHeadAttention(b *builder, name string, layer int, cfg TransformerConfig, query, memory graph.NodeID, bwScale int) graph.NodeID {
	B, T, H := cfg.Batch, cfg.SeqLen, cfg.Hidden
	tok := B * T
	dk := H / cfg.Heads
	actBytes := tensorBytes(tok * H)
	headBytes := tensorBytes(tok * dk)
	sc := time.Duration(bwScale)

	kq := b.kernel(name+"/qkv_kernel", layer)
	qkv := b.gpu(name+"/qkv_matmul", layer, sc*matmulCost(1, tok, H, 3*H),
		int64(bwScale)*(tensorBytes(3*tok*H)+tensorBytes(3*H*H)))
	b.edge(kq, qkv, 64)
	b.edge(query, qkv, actBytes)
	if memory != query {
		b.edge(memory, qkv, actBytes)
	}

	concat := b.gpu(name+"/concat", layer, sc*elemwiseCost(tok*H), tensorBytes(tok*H))
	for h := 0; h < cfg.Heads; h++ {
		hn := fmt.Sprintf("%s/head%d", name, h)
		scores := b.gpu(hn+"/scores", layer, sc*matmulCost(B, T, dk, T), tensorBytes(B*T*T))
		b.edge(qkv, scores, 2*headBytes)
		smx := b.gpu(hn+"/softmax", layer, sc*elemwiseCost(B*T*T), tensorBytes(B*T*T))
		b.edge(scores, smx, tensorBytes(B*T*T))
		ctx := b.gpu(hn+"/context", layer, sc*matmulCost(B, T, T, dk), tensorBytes(tok*dk))
		b.edge(smx, ctx, tensorBytes(B*T*T))
		b.edge(qkv, ctx, headBytes)
		b.edge(ctx, concat, headBytes)
	}
	ko := b.kernel(name+"/out_kernel", layer)
	out := b.gpu(name+"/out_proj", layer, sc*matmulCost(1, tok, H, H),
		int64(bwScale)*(tensorBytes(tok*H)+tensorBytes(H*H)))
	b.edge(ko, out, 64)
	b.edge(concat, out, actBytes)
	return out
}
