package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// diamond builds A -> {B, C} -> D.
func diamond(t *testing.T) (*Graph, [4]NodeID) {
	t.Helper()
	g := New(4)
	var ids [4]NodeID
	for i, name := range []string{"A", "B", "C", "D"} {
		ids[i] = g.AddNode(Node{Name: name, Kind: KindGPU, Cost: time.Duration(i+1) * time.Microsecond})
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(ids[e[0]], ids[e[1]], 100); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g, ids
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		if id := g.AddNode(Node{Name: "x"}); int(id) != i {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeRejectsBadEdges(t *testing.T) {
	g := New(2)
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	if err := g.AddEdge(a, a, 0); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(a, 99, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: got %v, want ErrUnknownNode", err)
	}
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b, 1); !errors.Is(err, ErrDupEdge) {
		t.Errorf("duplicate: got %v, want ErrDupEdge", err)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g, ids := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violates order", e.From, e.To)
		}
	}
	if pos[ids[0]] != 0 || pos[ids[3]] != 3 {
		t.Errorf("unexpected order %v", order)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(3)
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	c := g.AddNode(Node{})
	for _, e := range [][2]NodeID{{a, b}, {b, c}, {c, a}} {
		if err := g.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v, want ErrCycle", err)
	}
	if _, err := g.Heights(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Heights: got %v, want ErrCycle", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate: got %v, want ErrCycle", err)
	}
}

func TestHeightsDiamond(t *testing.T) {
	g, ids := diamond(t)
	h, err := g.Heights()
	if err != nil {
		t.Fatalf("Heights: %v", err)
	}
	want := []int{1, 2, 2, 3}
	for i, id := range ids {
		if h[id] != want[i] {
			t.Errorf("H(%d) = %d, want %d", id, h[id], want[i])
		}
	}
}

func TestHeightsLongestPathWins(t *testing.T) {
	// A -> B -> C and A -> C: H(C) must be 3, not 2.
	g := New(3)
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	c := g.AddNode(Node{})
	for _, e := range [][2]NodeID{{a, b}, {b, c}, {a, c}} {
		if err := g.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	h, err := g.Heights()
	if err != nil {
		t.Fatalf("Heights: %v", err)
	}
	if h[c] != 3 {
		t.Fatalf("H(C) = %d, want 3", h[c])
	}
}

func TestCriticalPath(t *testing.T) {
	g, ids := diamond(t)
	// Costs: A=1us B=2us C=3us D=4us -> critical path A,C,D = 8us.
	cp, path, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 8*time.Microsecond {
		t.Errorf("critical path = %v, want 8µs", cp)
	}
	want := []NodeID{ids[0], ids[2], ids[3]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestReachable(t *testing.T) {
	g, ids := diamond(t)
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{ids[0], ids[3], true},
		{ids[1], ids[2], false},
		{ids[3], ids[0], false},
		{ids[2], ids[2], true},
	}
	for _, c := range cases {
		if got := g.Reachable(c.u, c.v); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestUniquePath(t *testing.T) {
	g, ids := diamond(t)
	// Add the shortcut edge A -> D: now (A,D) is not a unique path,
	// but (B,D) still is.
	if err := g.AddEdge(ids[0], ids[3], 0); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if ok, err := g.UniquePath(ids[0], ids[3]); err != nil || ok {
		t.Errorf("UniquePath(A,D) = %v,%v; want false,nil", ok, err)
	}
	if ok, err := g.UniquePath(ids[1], ids[3]); err != nil || !ok {
		t.Errorf("UniquePath(B,D) = %v,%v; want true,nil", ok, err)
	}
	if _, err := g.UniquePath(ids[1], ids[2]); err == nil {
		t.Error("UniquePath on a missing edge should error")
	}
}

func TestRootsLeavesDegrees(t *testing.T) {
	g, ids := diamond(t)
	if roots := g.Roots(); len(roots) != 1 || roots[0] != ids[0] {
		t.Errorf("Roots = %v", roots)
	}
	if leaves := g.Leaves(); len(leaves) != 1 || leaves[0] != ids[3] {
		t.Errorf("Leaves = %v", leaves)
	}
	if g.OutDegree(ids[0]) != 2 || g.InDegree(ids[3]) != 2 {
		t.Errorf("degrees wrong: out(A)=%d in(D)=%d", g.OutDegree(ids[0]), g.InDegree(ids[3]))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := diamond(t)
	c := g.Clone()
	if err := c.AddEdge(ids[1], ids[2], 7); err != nil {
		t.Fatalf("AddEdge on clone: %v", err)
	}
	if _, ok := g.EdgeBetween(ids[1], ids[2]); ok {
		t.Error("mutating clone leaked into original")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestTotals(t *testing.T) {
	g, _ := diamond(t)
	if got := g.TotalCost(); got != 10*time.Microsecond {
		t.Errorf("TotalCost = %v, want 10µs", got)
	}
}

func TestSetCost(t *testing.T) {
	g, ids := diamond(t)
	if err := g.SetCost(ids[1], 50*time.Microsecond); err != nil {
		t.Fatalf("SetCost: %v", err)
	}
	n, _ := g.Node(ids[1])
	if n.Cost != 50*time.Microsecond {
		t.Errorf("cost = %v", n.Cost)
	}
	if err := g.SetCost(999, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SetCost(999) = %v, want ErrUnknownNode", err)
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := diamond(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "toy"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "n0 -> n1", "100B"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// randomDAG builds a DAG by only adding forward edges over a random
// permutation, guaranteeing acyclicity by construction.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{Name: "op", Kind: KindGPU, Cost: time.Duration(rng.Intn(1000)) * time.Microsecond})
	}
	perm := rng.Perm(n)
	for k := 0; k < m; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if perm[i] > perm[j] {
			i, j = j, i
		}
		_ = g.AddEdge(NodeID(i), NodeID(j), int64(rng.Intn(1<<16)))
	}
	return g
}

func TestPropertyTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomDAG(rng, n, 3*n)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[NodeID]int, len(order))
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHeightsMonotoneAlongEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomDAG(rng, n, 3*n)
		h, err := g.Heights()
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if h[e.To] < h[e.From]+1 {
				return false
			}
		}
		for _, r := range g.Roots() {
			if h[r] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCriticalPathAtLeastMaxCostAtMostTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, 2*n)
		cp, path, err := g.CriticalPath()
		if err != nil {
			return false
		}
		var maxCost, pathCost time.Duration
		for _, nd := range g.Nodes() {
			if nd.Cost > maxCost {
				maxCost = nd.Cost
			}
		}
		for _, id := range path {
			nd, _ := g.Node(id)
			pathCost += nd.Cost
		}
		return cp >= maxCost && cp <= g.TotalCost() && cp == pathCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
