package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	g, _ := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(g.Nodes(), back.Nodes()) {
		t.Fatalf("nodes differ:\n%v\n%v", g.Nodes(), back.Nodes())
	}
	if !reflect.DeepEqual(g.Edges(), back.Edges()) {
		t.Fatalf("edges differ")
	}
}

func TestJSONReadWriteHelpers(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost structure")
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"nodes":[{"id":1,"name":"a"}],"edges":[]}`,                                                      // non-dense ids
		`{"nodes":[{"id":0,"name":"a"}],"edges":[{"from":0,"to":5,"bytes":1}]}`,                           // bad edge
		`{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bytes":1},{"from":1,"to":0,"bytes":1}]}`, // cycle
	}
	for i, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestJSONFieldTagsStable(t *testing.T) {
	g := New(1)
	g.AddNode(Node{Name: "op", Kind: KindGPU, Cost: time.Microsecond, Memory: 7, Coloc: "grp", Layer: 3, Branch: 2})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"costNanos":1000`, `"memoryBytes":7`, `"coloc":"grp"`, `"layer":3`, `"branch":2`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized graph missing %s: %s", key, data)
		}
	}
}

func TestPropertyJSONRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), 60)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return reflect.DeepEqual(g.Nodes(), back.Nodes()) &&
			reflect.DeepEqual(g.Edges(), back.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
