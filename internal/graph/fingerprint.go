package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
)

// fingerprintVersion is folded into every fingerprint so the hash
// changes whenever the canonical serialization below does — a cached
// plan keyed by an old layout can never be served against a new one.
const fingerprintVersion = "pesto/graph-fingerprint/v1\n"

// Fingerprint returns a SHA-256 content address of the graph's
// placement-relevant content. Two graphs share a fingerprint exactly
// when every input the placement pipeline consumes is equal: node
// count, and per node (in ID order) the kind, compute cost, memory
// footprint, colocation group, layer and branch indices; plus the edge
// set with its tensor sizes.
//
// The serialization is canonical:
//
//   - Clone()d graphs hash identically (the hash reads only node and
//     edge values, never slice capacities or addresses).
//   - Edge-insertion order is irrelevant: edges are hashed sorted by
//     (From, To). Node order is NOT normalized away — AddNode order
//     defines the dense NodeIDs that plans index by, so two graphs
//     built in different node orders are semantically different even
//     when isomorphic.
//   - Node names are excluded: they label operations for humans and
//     never reach a placement decision, so renaming a graph keeps its
//     plans (and cache entries) valid.
//
// The fingerprint is the cache key of the plan-serving layer
// (internal/service); JSON round-trips preserve it because the codec
// carries every hashed field.
func (g *Graph) Fingerprint() [32]byte {
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	writeU64(h, uint64(len(g.nodes)))
	for i := range g.nodes {
		n := &g.nodes[i]
		writeU64(h, uint64(n.Kind))
		writeU64(h, uint64(n.Cost))
		writeU64(h, uint64(n.Memory))
		writeU64(h, uint64(len(n.Coloc)))
		h.Write([]byte(n.Coloc))
		writeU64(h, uint64(int64(n.Layer)))
		writeU64(h, uint64(int64(n.Branch)))
	}
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	writeU64(h, uint64(len(edges)))
	for _, e := range edges {
		writeU64(h, uint64(e.From))
		writeU64(h, uint64(e.To))
		writeU64(h, uint64(e.Bytes))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
