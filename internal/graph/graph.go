// Package graph implements the directed-acyclic computation graphs that
// Pesto places and schedules. A Graph mirrors what TensorFlow's tf.Graph
// exposes to a placement algorithm: operations carrying a compute-time
// estimate, a device affinity (CPU, GPU, or Kernel), a memory footprint,
// and an optional colocation group; and edges carrying the number of bytes
// the upstream operation's output tensor occupies on the wire.
//
// The package provides the graph algorithms Pesto's coarsening and
// scheduling layers rely on: Kahn topological sorting, the batched
// height computation of §3.3 of the paper, unique-path testing
// (Theorem 3.2), critical-path analysis, and reachability.
package graph

import (
	"errors"
	"fmt"
	"time"
)

// NodeID identifies an operation within a Graph. IDs are dense: a graph
// with n nodes uses IDs 0..n-1 in insertion order.
type NodeID int

// OpKind is the device affinity of an operation (§3.2.1 of the paper:
// O_C, O_G, O_K).
type OpKind int

const (
	// KindCPU marks operations that must execute on the CPU.
	KindCPU OpKind = iota + 1
	// KindGPU marks operations that execute on a GPU; these are the
	// operations the Pesto ILP decides placement for.
	KindGPU
	// KindKernel marks small pre-processing operations executed on the
	// CPU immediately before a GPU operation launches.
	KindKernel
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindGPU:
		return "GPU"
	case KindKernel:
		return "Kernel"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Node is a single compute operation in the model DAG.
type Node struct {
	ID   NodeID
	Name string
	Kind OpKind

	// Cost is the estimated compute time p_i of the operation,
	// produced by the profiler (§3.1).
	Cost time.Duration

	// Memory is the resident memory footprint in bytes (sum of input
	// and output tensor sizes, as obtained from tf.profiler in the
	// paper's implementation). Used by the memory-balance constraints.
	Memory int64

	// Coloc names a colocation group. All operations sharing a
	// non-empty Coloc value must be placed on the same device
	// (x_{i1} = x_{i2} = ... in the ILP).
	Coloc string

	// Layer is the model-level layer index the operation belongs to,
	// or -1 when unknown. The Expert baseline partitions by Layer.
	Layer int

	// Branch is the parallel-branch index within the layer (NASNet
	// cells), or -1/0 when the operation belongs to no specific branch.
	// The branch-splitting Expert strategy partitions by Branch.
	Branch int
}

// Edge is a precedence constraint (i, j): j may start only after i has
// completed and i's output tensor has been transferred to j's device.
type Edge struct {
	From, To NodeID
	// Bytes is the size of the tensor transferred along this edge.
	Bytes int64
}

// Graph is a mutable DAG of operations. The zero value is not usable;
// construct graphs with New.
//
// Acyclicity is not enforced on every AddEdge (that would be quadratic);
// call Validate or TopoSort to check, as the construction code in
// internal/models and internal/coarsen does.
type Graph struct {
	nodes []Node
	succ  [][]Edge // succ[i] = outgoing edges of node i
	pred  [][]Edge // pred[i] = incoming edges of node i
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		succ:  make([][]Edge, 0, n),
		pred:  make([][]Edge, 0, n),
	}
}

// Errors reported by graph construction and validation.
var (
	ErrCycle       = errors.New("graph contains a cycle")
	ErrUnknownNode = errors.New("unknown node id")
	ErrSelfLoop    = errors.New("self loop")
	ErrDupEdge     = errors.New("duplicate edge")
	ErrUnknownEdge = errors.New("unknown edge")
)

// AddNode appends an operation and returns its assigned ID. The ID field
// of the argument is ignored and overwritten.
func (g *Graph) AddNode(n Node) NodeID {
	id := NodeID(len(g.nodes))
	n.ID = id
	g.nodes = append(g.nodes, n)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge inserts the precedence edge (from, to) carrying bytes of tensor
// data. It rejects self loops, unknown endpoints and duplicate edges.
func (g *Graph) AddEdge(from, to NodeID, bytes int64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrUnknownNode)
	}
	if from == to {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrSelfLoop)
	}
	for _, e := range g.succ[from] {
		if e.To == to {
			return fmt.Errorf("edge (%d,%d): %w", from, to, ErrDupEdge)
		}
	}
	e := Edge{From: from, To: to, Bytes: bytes}
	g.succ[from] = append(g.succ[from], e)
	g.pred[to] = append(g.pred[to], e)
	return nil
}

func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}

// NumNodes reports the number of operations in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of precedence edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.succ {
		n += len(es)
	}
	return n
}

// Node returns the operation with the given ID. The second result is
// false when the ID is out of range.
func (g *Graph) Node(id NodeID) (Node, bool) {
	if !g.valid(id) {
		return Node{}, false
	}
	return g.nodes[id], true
}

// SetCost overwrites the compute-time estimate of a node. The profiler
// uses this to attach measured times to a structural graph.
func (g *Graph) SetCost(id NodeID, cost time.Duration) error {
	if !g.valid(id) {
		return fmt.Errorf("set cost of %d: %w", id, ErrUnknownNode)
	}
	g.nodes[id].Cost = cost
	return nil
}

// SetMemory overwrites the memory footprint of a node. Model generators
// use this to calibrate total footprints against device capacities.
func (g *Graph) SetMemory(id NodeID, mem int64) error {
	if !g.valid(id) {
		return fmt.Errorf("set memory of %d: %w", id, ErrUnknownNode)
	}
	g.nodes[id].Memory = mem
	return nil
}

// SetColoc overwrites the colocation group of a node (empty clears it).
// The random-DAG generator uses this to bind operations into groups
// after the structural wiring is done.
func (g *Graph) SetColoc(id NodeID, group string) error {
	if !g.valid(id) {
		return fmt.Errorf("set coloc of %d: %w", id, ErrUnknownNode)
	}
	g.nodes[id].Coloc = group
	return nil
}

// Nodes returns a copy of the node slice in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Succ returns a copy of the outgoing edges of id.
func (g *Graph) Succ(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	out := make([]Edge, len(g.succ[id]))
	copy(out, g.succ[id])
	return out
}

// Pred returns a copy of the incoming edges of id.
func (g *Graph) Pred(id NodeID) []Edge {
	if !g.valid(id) {
		return nil
	}
	out := make([]Edge, len(g.pred[id]))
	copy(out, g.pred[id])
	return out
}

// OutDegree reports |succ(id)|.
func (g *Graph) OutDegree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.succ[id])
}

// InDegree reports |prec(id)|.
func (g *Graph) InDegree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.pred[id])
}

// Edges returns all edges of the graph, grouped by source node in ID
// order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for _, es := range g.succ {
		out = append(out, es...)
	}
	return out
}

// EdgeBetween returns the edge (from, to) if it exists.
func (g *Graph) EdgeBetween(from, to NodeID) (Edge, bool) {
	if !g.valid(from) {
		return Edge{}, false
	}
	for _, e := range g.succ[from] {
		if e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// SetEdgeBytes overwrites the tensor size of an existing edge. The
// incremental edit machinery uses this to reweight communication
// without rebuilding the graph.
func (g *Graph) SetEdgeBytes(from, to NodeID, bytes int64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrUnknownNode)
	}
	found := false
	for i := range g.succ[from] {
		if g.succ[from][i].To == to {
			g.succ[from][i].Bytes = bytes
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrUnknownEdge)
	}
	for i := range g.pred[to] {
		if g.pred[to][i].From == from {
			g.pred[to][i].Bytes = bytes
			break
		}
	}
	return nil
}

// RemoveEdge deletes the precedence edge (from, to). Removing an edge
// can never introduce a cycle, so no revalidation is needed.
func (g *Graph) RemoveEdge(from, to NodeID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrUnknownNode)
	}
	found := false
	for i, e := range g.succ[from] {
		if e.To == to {
			g.succ[from] = append(g.succ[from][:i], g.succ[from][i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("edge (%d,%d): %w", from, to, ErrUnknownEdge)
	}
	for i, e := range g.pred[to] {
		if e.From == from {
			g.pred[to] = append(g.pred[to][:i], g.pred[to][i+1:]...)
			break
		}
	}
	return nil
}

// Roots returns the IDs of nodes without predecessors.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if len(g.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Leaves returns the IDs of nodes without successors.
func (g *Graph) Leaves() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if len(g.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.nodes))
	c.nodes = append(c.nodes, g.nodes...)
	c.succ = make([][]Edge, len(g.succ))
	c.pred = make([][]Edge, len(g.pred))
	for i := range g.succ {
		if len(g.succ[i]) > 0 {
			c.succ[i] = append([]Edge(nil), g.succ[i]...)
		}
		if len(g.pred[i]) > 0 {
			c.pred[i] = append([]Edge(nil), g.pred[i]...)
		}
	}
	return c
}

// TotalCost sums the compute times of all operations. It is a trivial
// lower bound on single-device makespan.
func (g *Graph) TotalCost() time.Duration {
	var t time.Duration
	for i := range g.nodes {
		t += g.nodes[i].Cost
	}
	return t
}

// TotalMemory sums the memory footprints of all operations.
func (g *Graph) TotalMemory() int64 {
	var m int64
	for i := range g.nodes {
		m += g.nodes[i].Memory
	}
	return m
}

// Validate checks structural invariants: edge endpoints exist, pred/succ
// are mirror images, and the graph is acyclic.
func (g *Graph) Validate() error {
	for i, es := range g.succ {
		for _, e := range es {
			if e.From != NodeID(i) {
				return fmt.Errorf("succ[%d] holds edge from %d", i, e.From)
			}
			if !g.valid(e.To) {
				return fmt.Errorf("edge (%d,%d): %w", e.From, e.To, ErrUnknownNode)
			}
			found := false
			for _, p := range g.pred[e.To] {
				if p.From == e.From {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("edge (%d,%d) missing from pred index", e.From, e.To)
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}
