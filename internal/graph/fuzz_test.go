package graph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON ensures arbitrary bytes never panic the decoder and
// that anything it accepts is a valid DAG that round-trips.
func FuzzGraphJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":[{"id":0,"name":"a","kind":2,"costNanos":100}],"edges":[]}`,
		`{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1,"bytes":7}]}`,
		`{"nodes":[{"id":0},{"id":1}],"edges":[{"from":1,"to":0,"bytes":7},{"from":0,"to":1,"bytes":1}]}`,
		`{"nodes":[{"id":5}],"edges":[]}`,
		`[1,2,3]`,
		`{"nodes":[{"id":0,"costNanos":-5}],"edges":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected input is fine
		}
		// Accepted input must be a coherent DAG.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed structure")
		}
	})
}
