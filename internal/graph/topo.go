package graph

import (
	"fmt"
	"time"
)

// TopoSort returns the node IDs in a topological order computed with
// Kahn's algorithm, or ErrCycle when the graph is not a DAG.
func (g *Graph) TopoSort() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := range g.pred {
		indeg[i] = len(g.pred[i])
	}
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.succ[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("topological sort visited %d of %d nodes: %w", len(order), n, ErrCycle)
	}
	return order, nil
}

// Heights computes H(v) for every vertex per Definition 3.4 of the paper:
// the longest distance, counted in vertices, from any root to v; roots
// have height 1. It uses the batched variant of Kahn's algorithm the
// paper describes (remove the whole zero-indegree frontier per step), in
// O(|V|+|E|).
func (g *Graph) Heights() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := range g.pred {
		indeg[i] = len(g.pred[i])
	}
	h := make([]int, n)
	frontier := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
			h[i] = 1
		}
	}
	visited := 0
	for len(frontier) > 0 {
		visited += len(frontier)
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.succ[v] {
				if h[v]+1 > h[e.To] {
					h[e.To] = h[v] + 1
				}
				indeg[e.To]--
				if indeg[e.To] == 0 {
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	if visited != n {
		return nil, fmt.Errorf("height computation visited %d of %d nodes: %w", visited, n, ErrCycle)
	}
	return h, nil
}

// CriticalPath returns the length of the longest compute-weighted path in
// the graph (ignoring communication), together with one such path. This
// is the classic lower bound on makespan with unlimited devices and free
// communication.
func (g *Graph) CriticalPath() (time.Duration, []NodeID, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	n := len(g.nodes)
	dist := make([]time.Duration, n) // longest path ending at i, inclusive
	prev := make([]NodeID, n)
	for i := range prev {
		prev[i] = -1
	}
	var best time.Duration
	bestEnd := NodeID(-1)
	for _, v := range order {
		dist[v] += g.nodes[v].Cost
		if dist[v] > best || bestEnd == -1 {
			best = dist[v]
			bestEnd = v
		}
		for _, e := range g.succ[v] {
			if dist[v] > dist[e.To] {
				dist[e.To] = dist[v]
				prev[e.To] = v
			}
		}
	}
	var path []NodeID
	for v := bestEnd; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// Reachable reports whether there is a directed path from u to v
// (including the trivial path when u == v).
func (g *Graph) Reachable(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	if u == v {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.succ[x] {
			if e.To == v {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// UniquePath reports whether the edge (u, v) is the only path from u to v,
// the necessary and sufficient condition of Theorem 3.2 for merging u and
// v without creating a cycle. The edge (u, v) must exist.
func (g *Graph) UniquePath(u, v NodeID) (bool, error) {
	if _, ok := g.EdgeBetween(u, v); !ok {
		return false, fmt.Errorf("unique path test: no edge (%d,%d)", u, v)
	}
	// There is another u~>v path iff v is reachable from some successor
	// of u other than v, or from v-excluded expansion of u. Equivalently:
	// remove the edge (u,v) and test reachability.
	seen := make([]bool, len(g.nodes))
	var stack []NodeID
	for _, e := range g.succ[u] {
		if e.To == v {
			continue // skip the direct edge
		}
		if !seen[e.To] {
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return false, nil
		}
		for _, e := range g.succ[x] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return true, nil
}
