package graph

import (
	"bytes"
	"testing"
	"time"
)

// fpGraph builds a small graph exercising every hashed field: mixed
// kinds, costs, memories, colocation, layers, branches and a diamond
// edge pattern with distinct tensor sizes.
func fpGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(5)
	g.AddNode(Node{Name: "in", Kind: KindCPU, Cost: 10 * time.Microsecond, Layer: 0, Branch: -1})
	g.AddNode(Node{Name: "a", Kind: KindGPU, Cost: 40 * time.Microsecond, Memory: 1 << 20, Coloc: "grp", Layer: 1, Branch: 0})
	g.AddNode(Node{Name: "b", Kind: KindGPU, Cost: 30 * time.Microsecond, Memory: 2 << 20, Coloc: "grp", Layer: 1, Branch: 1})
	g.AddNode(Node{Name: "c", Kind: KindGPU, Cost: 50 * time.Microsecond, Memory: 1 << 19, Layer: 2, Branch: -1})
	g.AddNode(Node{Name: "k", Kind: KindKernel, Cost: 2 * time.Microsecond, Layer: 2, Branch: -1})
	mustEdge := func(from, to NodeID, bytes int64) {
		t.Helper()
		if err := g.AddEdge(from, to, bytes); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
		}
	}
	mustEdge(0, 1, 4096)
	mustEdge(0, 2, 8192)
	mustEdge(1, 3, 1024)
	mustEdge(2, 3, 2048)
	mustEdge(4, 3, 0)
	return g
}

func TestFingerprintCloneStable(t *testing.T) {
	g := fpGraph(t)
	want := g.Fingerprint()
	c := g.Clone()
	if got := c.Fingerprint(); got != want {
		t.Fatalf("Clone changed fingerprint: %x vs %x", got, want)
	}
	// Hashing must not mutate the graph: fingerprint again and compare
	// the full structure.
	if got := g.Fingerprint(); got != want {
		t.Fatalf("second Fingerprint differs: %x vs %x", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after fingerprinting: %v", err)
	}
}

func TestFingerprintEdgeInsertionOrderIrrelevant(t *testing.T) {
	g := fpGraph(t)
	// Same nodes, edges added in a different order.
	h := New(5)
	for _, n := range g.Nodes() {
		h.AddNode(Node{Name: n.Name, Kind: n.Kind, Cost: n.Cost, Memory: n.Memory, Coloc: n.Coloc, Layer: n.Layer, Branch: n.Branch})
	}
	edges := g.Edges()
	for i := len(edges) - 1; i >= 0; i-- {
		if err := h.AddEdge(edges[i].From, edges[i].To, edges[i].Bytes); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if g.Fingerprint() != h.Fingerprint() {
		t.Fatal("edge insertion order changed the fingerprint")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	g := fpGraph(t)
	want := g.Fingerprint()
	h := g.Clone()
	h.nodes[1].Name = "renamed"
	if got := h.Fingerprint(); got != want {
		t.Fatal("node name affected the fingerprint; names never reach placement")
	}
}

// TestFingerprintSensitivity proves the hash reacts to every field the
// placement pipeline consumes: a change in any of them must change the
// fingerprint, or the plan cache would serve a stale plan.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph(t)
	want := base.Fingerprint()
	mutations := map[string]func(g *Graph){
		"kind":       func(g *Graph) { g.nodes[3].Kind = KindCPU },
		"cost":       func(g *Graph) { g.nodes[1].Cost += time.Nanosecond },
		"memory":     func(g *Graph) { g.nodes[2].Memory++ },
		"coloc-set":  func(g *Graph) { g.nodes[3].Coloc = "grp" },
		"coloc-edit": func(g *Graph) { g.nodes[1].Coloc = "grq" },
		"layer":      func(g *Graph) { g.nodes[2].Layer = 7 },
		"branch":     func(g *Graph) { g.nodes[1].Branch = 2 },
		"edge-bytes": func(g *Graph) { g.succ[0][0].Bytes++; g.pred[1][0].Bytes++ },
		"edge-added": func(g *Graph) {
			if err := g.AddEdge(1, 4, 16); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		},
		"edge-endpoint": func(g *Graph) {
			// Rewire 4→3 to 0→3 keeping counts equal.
			g.succ[4] = nil
			g.pred[3] = g.pred[3][:2]
			if err := g.AddEdge(0, 3, 0); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		},
		"node-added": func(g *Graph) { g.AddNode(Node{Kind: KindGPU, Cost: time.Microsecond}) },
	}
	for name, mutate := range mutations {
		c := base.Clone()
		mutate(c)
		if c.Fingerprint() == want {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

func TestFingerprintJSONRoundTripStable(t *testing.T) {
	g := fpGraph(t)
	want := g.Fingerprint()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got := back.Fingerprint(); got != want {
		t.Fatalf("JSON round trip changed fingerprint: %x vs %x", got, want)
	}
}

// TestFingerprintColocBoundary guards the length-prefixed string
// encoding: moving bytes between adjacent variable-length fields must
// not collide.
func TestFingerprintColocBoundary(t *testing.T) {
	mk := func(coloc string, layer int) *Graph {
		g := New(1)
		g.AddNode(Node{Kind: KindGPU, Cost: time.Microsecond, Coloc: coloc, Layer: layer})
		return g
	}
	if mk("ab", 0).Fingerprint() == mk("a", 0).Fingerprint() {
		t.Fatal("coloc length not bound into the hash")
	}
	if mk("", 1).Fingerprint() == mk("", 0).Fingerprint() {
		t.Fatal("layer not bound into the hash")
	}
}
