package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, one node per
// operation labeled with name, kind and cost, for debugging and for the
// examples' visual output.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", title)
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s %s\"];\n", n.ID, escape(n.Name), n.Kind, n.Cost)
	}
	for _, es := range g.succ {
		for _, e := range es {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%dB\"];\n", e.From, e.To, e.Bytes)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", `\n`).Replace(s)
}
