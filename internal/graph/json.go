package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonNode is the serialized form of a Node. Durations are nanoseconds
// and all fields carry explicit tags: the serialized graph is a
// contract (plans reference nodes by ID).
type jsonNode struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Kind   int    `json:"kind"`
	CostNs int64  `json:"costNanos"`
	Memory int64  `json:"memoryBytes"`
	Coloc  string `json:"coloc,omitempty"`
	Layer  int    `json:"layer"`
	Branch int    `json:"branch,omitempty"`
}

type jsonEdge struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Bytes int64 `json:"bytes"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// MarshalJSON serializes the graph with stable node IDs.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{
		Nodes: make([]jsonNode, 0, g.NumNodes()),
		Edges: make([]jsonEdge, 0, g.NumEdges()),
	}
	for _, n := range g.nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID: int(n.ID), Name: n.Name, Kind: int(n.Kind),
			CostNs: n.Cost.Nanoseconds(), Memory: n.Memory,
			Coloc: n.Coloc, Layer: n.Layer, Branch: n.Branch,
		})
	}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, jsonEdge{From: int(e.From), To: int(e.To), Bytes: e.Bytes})
	}
	return json.Marshal(out)
}

// UnmarshalJSON replaces the receiver's contents with the serialized
// graph, validating IDs, edges and acyclicity.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decode graph: %w", err)
	}
	fresh := New(len(in.Nodes))
	for i, n := range in.Nodes {
		if n.ID != i {
			return fmt.Errorf("decode graph: node %d has id %d (ids must be dense and ordered)", i, n.ID)
		}
		fresh.AddNode(Node{
			Name: n.Name, Kind: OpKind(n.Kind),
			Cost: time.Duration(n.CostNs), Memory: n.Memory,
			Coloc: n.Coloc, Layer: n.Layer, Branch: n.Branch,
		})
	}
	for _, e := range in.Edges {
		if err := fresh.AddEdge(NodeID(e.From), NodeID(e.To), e.Bytes); err != nil {
			return fmt.Errorf("decode graph: %w", err)
		}
	}
	if err := fresh.Validate(); err != nil {
		return fmt.Errorf("decode graph: %w", err)
	}
	*g = *fresh
	return nil
}

// WriteJSON writes the graph to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadJSON parses a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := New(0)
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}
