package ilp

// Bound-consistency oracle for the branch and bound: on randomized
// knapsack instances the reported incumbent can never beat the proven
// lower bound, the bound can never beat the root LP relaxation, and the
// published gap must be the documented arithmetic over the two — the
// properties the differential sweep's LP-lower-bound oracle relies on.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pesto/internal/lp"
)

func randomKnapsack(rng *rand.Rand, n int) Problem {
	pr := binaryProblem(n)
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		_ = pr.LP.SetObjective(i, -float64(1+rng.Intn(20)))
		terms[i] = lp.Term{Var: i, Coef: float64(1 + rng.Intn(10))}
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: float64(5 + rng.Intn(5*n))})
	return pr
}

func TestSolutionNeverBeatsItsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		pr := randomKnapsack(rng, n)

		// Root relaxation objective: the weakest valid bound.
		root, err := lp.Solve(pr.LP)
		if err != nil {
			t.Fatalf("trial %d: root LP: %v", trial, err)
		}

		sol, err := Solve(context.Background(), pr, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const eps = 1e-6
		if sol.Objective < sol.Bound-eps {
			t.Fatalf("trial %d: incumbent %g beats proven bound %g", trial, sol.Objective, sol.Bound)
		}
		if sol.Bound < root.Objective-eps {
			t.Fatalf("trial %d: final bound %g weaker than root relaxation %g", trial, sol.Bound, root.Objective)
		}
		wantGap := (sol.Objective - sol.Bound) / math.Max(math.Abs(sol.Objective), 1)
		if math.Abs(sol.Gap-wantGap) > eps {
			t.Fatalf("trial %d: gap %g, want %g", trial, sol.Gap, wantGap)
		}
		if sol.Status == OptimalStatus && sol.Gap > eps {
			t.Fatalf("trial %d: optimal status with gap %g", trial, sol.Gap)
		}
	}
}

func TestTruncatedSearchKeepsValidBound(t *testing.T) {
	// A node-capped search must still report Objective >= Bound: the
	// truncation weakens the bound, never the invariant.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pr := randomKnapsack(rng, 12)
		sol, err := Solve(context.Background(), pr, Options{MaxNodes: 3})
		if err != nil {
			// With a tiny node budget some instances end without any
			// incumbent; that is a legal outcome, not a bound bug.
			continue
		}
		if sol.Objective < sol.Bound-1e-6 {
			t.Fatalf("trial %d: truncated incumbent %g beats bound %g", trial, sol.Objective, sol.Bound)
		}
	}
}
