// Package ilp implements a 0-1 mixed-integer linear program solver by
// branch and bound over LP relaxations solved with internal/lp. Together
// with internal/lp it is this repository's substitute for the CPLEX
// dependency of the Pesto paper.
//
// The solver searches depth-first with best-bound plunging, branches on
// the most fractional binary variable, and accepts incumbents both from
// integral LP relaxations and from an optional caller-supplied rounding
// heuristic (Pesto's placement layer supplies one that list-schedules a
// rounded placement, which is what keeps large instances productive when
// the time budget truncates the exact search). Solutions report the
// remaining optimality gap, so callers can distinguish proven-optimal
// results (the Theorem 3.1 regime) from budget-limited ones.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/engine"
	"pesto/internal/lp"
	"pesto/internal/obs"
)

// Problem is a 0-1 MILP: an LP plus a set of variables restricted to
// {0, 1}.
type Problem struct {
	// LP is the relaxation. Binary variables must have bounds within
	// [0, 1].
	LP *lp.Problem
	// Binary lists the indices of 0-1 variables.
	Binary []int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit bounds the wall-clock search time; zero means 30s.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored B&B nodes; zero means
	// 200000.
	MaxNodes int
	// GapTolerance stops the search once the relative gap between the
	// incumbent and the best bound falls below it; zero means 1e-6.
	GapTolerance float64
	// Incumbent, when non-nil, is invoked with each LP relaxation
	// solution. It may return a feasible point for the full problem
	// and its objective; the solver keeps it if it improves the
	// incumbent. This hook lets domain code contribute rounding
	// heuristics without the solver knowing the problem structure.
	// The hook is always called from the merge phase on a single
	// goroutine, so it may keep unguarded state.
	Incumbent func(relaxed []float64) (x []float64, obj float64, ok bool)
	// Pool evaluates the LP relaxations of independent open nodes
	// concurrently. Nil runs them inline. The search trajectory is a
	// function of batchSize, not of the pool's worker count, so the
	// returned solution is identical at any parallelism level for a
	// fixed truncation point (MaxNodes, or a TimeLimit that does not
	// bind). A binding TimeLimit truncates wherever the wall clock
	// lands, which varies with machine load.
	Pool *engine.Pool
}

// batchSize is the number of open nodes whose LP relaxations are
// solved per round. It is a constant — deliberately not the worker
// count — so the set of explored nodes, and therefore the solution,
// does not depend on how many workers the pool happens to have.
const batchSize = 8

func (o Options) withDefaults() Options {
	if o.TimeLimit <= 0 {
		o.TimeLimit = 30 * time.Second
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.GapTolerance <= 0 {
		o.GapTolerance = 1e-6
	}
	return o
}

// Status reports the outcome of Solve.
type Status int

const (
	// OptimalStatus means the incumbent was proven optimal.
	OptimalStatus Status = iota + 1
	// FeasibleStatus means a feasible incumbent was found, but the
	// search stopped (time, node limit, context) before proving
	// optimality.
	FeasibleStatus
	// InfeasibleStatus means the problem has no feasible solution.
	InfeasibleStatus
	// NoSolutionStatus means the search stopped before finding any
	// feasible solution.
	NoSolutionStatus
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OptimalStatus:
		return "optimal"
	case FeasibleStatus:
		return "feasible"
	case InfeasibleStatus:
		return "infeasible"
	case NoSolutionStatus:
		return "no-solution"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Gap is (Objective-Bound)/max(|Objective|,1), zero when optimal.
	Gap float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// ErrInfeasible is wrapped by Solve when the problem admits no feasible
// solution.
var ErrInfeasible = errors.New("integer infeasible")

const intTol = 1e-6

type node struct {
	fixes map[int]float64 // binary var -> 0 or 1
	bound float64         // parent LP bound (priority)
	depth int
	// basis is the parent relaxation's optimal basis, used to warm-start
	// this node's LP with dual simplex (only bounds changed, so the
	// parent basis stays dual feasible). Siblings share the same
	// immutable Basis; each solve copies what it needs, so the batch
	// fan-out never mutates shared state. Nil (root, or memory guard)
	// falls back to a cold solve.
	basis *lp.Basis
}

// maxWarmFrontier bounds how many open nodes may carry a basis
// snapshot. A Basis holds an m×m inverse, so an adversarial frontier
// could otherwise pin unbounded memory; beyond the cap children solve
// cold, which affects speed but not the search trajectory's
// correctness.
const maxWarmFrontier = 512

// Solve runs branch and bound and returns the best solution found. The
// context cancels the search early (the best incumbent so far is still
// returned with FeasibleStatus); the time limit is enforced through a
// derived context deadline, so in-flight LP batches stop launching new
// work rather than being polled from outside.
func Solve(ctx context.Context, p Problem, opts Options) (Solution, error) {
	opts = opts.withDefaults()
	start := time.Now()
	deadline := start.Add(opts.TimeLimit)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	ctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	// Telemetry: counters (ilp.nodes, ilp.incumbents, and through lpObs
	// the lp.solves/lp.pivots of every relaxation) plus the
	// incumbent-vs-lower-bound convergence series sampled once per
	// batch. All of it is nil-safe no-ops without a recorder.
	rec := obs.From(ctx)
	var lpObs lp.Observer
	if rec != nil {
		lpObs = rec
	}
	newIncumbent := func(source string, objective float64) {
		rec.Add("ilp.incumbents", 1)
		rec.Point("ilp.incumbent", obs.String("source", source), obs.F64("objective", objective))
	}

	isBinary := make(map[int]bool, len(p.Binary))
	for _, v := range p.Binary {
		isBinary[v] = true
		lo, hi := p.LP.Bounds(v)
		if lo < 0 || hi > 1 {
			return Solution{}, fmt.Errorf("binary var %d has bounds [%g,%g] outside [0,1]", v, lo, hi)
		}
	}

	best := Solution{Status: NoSolutionStatus, Objective: math.Inf(1), Bound: math.Inf(-1)}
	lpStalled := false
	// stalledBound is the weakest dual-feasible bound among dropped
	// (deadline-truncated) subtrees; it caps the final proven Bound.
	stalledBound := math.Inf(1)
	// open is kept sorted by bound descending so we can pop the
	// best-bound node from the tail cheaply.
	open := []node{{fixes: map[int]float64{}, bound: math.Inf(-1)}}
	rootSolved := false
	rootBound := math.Inf(-1)

	// Each round pops up to batchSize nodes, solves their LP
	// relaxations concurrently through the pool (the solve is pure:
	// clone, fix bounds, solve), and then merges the outcomes on this
	// goroutine in pop order — pruning, incumbent updates, diving and
	// branching all happen sequentially on merged state.
	prunable := func(bound float64) bool {
		return bound > best.Objective-opts.GapTolerance*math.Max(math.Abs(best.Objective), 1) &&
			rootSolved && !math.IsInf(bound, -1) && best.Status != NoSolutionStatus
	}
	type lpOutcome struct {
		rel lp.Solution
		err error
	}
	for len(open) > 0 {
		if ctx.Err() != nil || best.Nodes >= opts.MaxNodes {
			break
		}
		// Order the frontier: best-bound nodes at the tail — except
		// while no incumbent exists, where diving (deepest node first)
		// reaches integral leaves fastest.
		if best.Status == NoSolutionStatus {
			sort.Slice(open, func(i, j int) bool { return open[i].depth < open[j].depth })
		} else {
			sort.Slice(open, func(i, j int) bool { return open[i].bound > open[j].bound })
		}
		// Pop up to batchSize non-prunable nodes from the tail.
		var batch []node
		for len(open) > 0 && len(batch) < batchSize {
			nd := open[len(open)-1]
			open = open[:len(open)-1]
			if prunable(nd.bound) {
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}
		outs, mapErr := engine.Map(ctx, opts.Pool, len(batch), func(_ context.Context, i int) (lpOutcome, error) {
			sub := p.LP.Clone()
			for v, val := range batch[i].fixes {
				if err := sub.SetBounds(v, val, val); err != nil {
					return lpOutcome{}, fmt.Errorf("apply branch fix: %w", err)
				}
			}
			rel, err := lp.SolveWarmDeadlineObs(sub, batch[i].basis, deadline, lpObs)
			return lpOutcome{rel: rel, err: err}, nil
		})
		if mapErr != nil {
			break // cancelled mid-batch; results may be incomplete
		}
		for i, nd := range batch {
			out := outs[i]
			if out.Err != nil {
				return best, out.Err
			}
			rel, err := out.Value.rel, out.Value.err
			best.Nodes++
			rec.Add("ilp.nodes", 1)
			// Per-child pivot counts expose warm-start effectiveness in
			// the B&B trajectory: warm-started children should need far
			// fewer pivots than the cold root.
			rec.Sample("ilp.child.pivots", float64(rel.Iters), obs.Int("node", int64(best.Nodes)))
			if err != nil {
				if errors.Is(err, lp.ErrNoSolution) {
					if rel.Status == lp.IterLimit {
						// The LP ran out of time or stalled. The subtree
						// is dropped, but a truncated solve is no longer
						// a total loss: a dual-feasible objective is a
						// valid lower bound for the subtree (it caps the
						// final Bound, or prunes outright), and a primal
						// feasible iterate can still seed the caller's
						// rounding heuristic.
						lpStalled = true
						rootSolved = true
						if rel.DualFeasible && !math.IsInf(rel.Objective, 0) {
							if !prunable(rel.Objective) && rel.Objective < stalledBound {
								stalledBound = rel.Objective
							}
						}
						if opts.Incumbent != nil && len(rel.X) > 0 {
							if hx, hobj, ok := opts.Incumbent(rel.X); ok && hobj < best.Objective {
								best.X = append([]float64(nil), hx...)
								best.Objective = hobj
								best.Status = FeasibleStatus
								newIncumbent("stalled-relaxation", hobj)
							}
						}
						continue
					}
					if !rootSolved && rel.Status == lp.Infeasible {
						best.Status = InfeasibleStatus
						best.Elapsed = time.Since(start)
						return best, fmt.Errorf("root relaxation: %w", ErrInfeasible)
					}
					rootSolved = true
					continue // prune infeasible subtree
				}
				return best, fmt.Errorf("lp solve: %w", err)
			}
			if !rootSolved {
				rootSolved = true
				rootBound = rel.Objective
			}
			// Bound-based pruning against the latest incumbent (an
			// earlier node of this batch may have improved it since
			// this node was selected).
			if best.Status != NoSolutionStatus && rel.Objective >= best.Objective-opts.GapTolerance*math.Max(math.Abs(best.Objective), 1) {
				continue
			}
			// Offer the relaxation to the caller's heuristic.
			if opts.Incumbent != nil {
				if hx, hobj, ok := opts.Incumbent(rel.X); ok && hobj < best.Objective {
					best.X = append([]float64(nil), hx...)
					best.Objective = hobj
					best.Status = FeasibleStatus
					newIncumbent("heuristic", hobj)
				}
			}
			// Rounding dive: a built-in primal heuristic that fixes
			// near-integral binaries in bulk and re-solves until an
			// integral point falls out. Run at the root and
			// periodically, and always while no incumbent exists.
			if best.Nodes == 1 || best.Status == NoSolutionStatus || best.Nodes%16 == 0 {
				if dx, dobj, ok := dive(p, nd.fixes, rel.X, rel.Basis, deadline, lpObs); ok && dobj < best.Objective {
					best.X = dx
					best.Objective = dobj
					best.Status = FeasibleStatus
					newIncumbent("dive", dobj)
				}
			}
			// Find most fractional binary.
			branchVar, frac := -1, 0.0
			for _, v := range p.Binary {
				f := rel.X[v] - math.Floor(rel.X[v])
				d := math.Min(f, 1-f)
				if d > intTol && d > frac {
					frac = d
					branchVar = v
				}
			}
			if branchVar < 0 {
				// Integral: candidate incumbent.
				if rel.Objective < best.Objective {
					best.X = append([]float64(nil), rel.X...)
					best.Objective = rel.Objective
					best.Status = FeasibleStatus
					newIncumbent("integral-leaf", rel.Objective)
				}
				continue
			}
			childBasis := rel.Basis
			if len(open) >= maxWarmFrontier {
				childBasis = nil
			}
			for _, val := range [2]float64{roundDir(rel.X[branchVar]), 1 - roundDir(rel.X[branchVar])} {
				fixes := make(map[int]float64, len(nd.fixes)+1)
				for k, v := range nd.fixes {
					fixes[k] = v
				}
				fixes[branchVar] = val
				open = append(open, node{fixes: fixes, bound: rel.Objective, depth: nd.depth + 1, basis: childBasis})
			}
		}
		if rec != nil {
			// One convergence sample per batch: the incumbent and the
			// frontier's proven lower bound, comparable in time against
			// the solver spans on the same recorder.
			if best.Status != NoSolutionStatus {
				rec.Sample("ilp.incumbent", best.Objective, obs.Int("nodes", int64(best.Nodes)))
			}
			fb := math.Inf(1)
			for _, nd := range open {
				if nd.bound < fb {
					fb = nd.bound
				}
			}
			if math.IsInf(fb, 1) || (rootSolved && fb < rootBound) {
				fb = rootBound
			}
			if !math.IsInf(fb, 0) {
				rec.Sample("ilp.bound", fb, obs.Int("nodes", int64(best.Nodes)))
			}
		}
	}

	best.Elapsed = time.Since(start)
	// Compute the final bound: the minimum over remaining open nodes
	// and the root bound.
	bound := math.Inf(1)
	for _, nd := range open {
		if nd.bound < bound {
			bound = nd.bound
		}
	}
	if len(open) == 0 {
		// Search exhausted: the incumbent is optimal (or none exists).
		bound = best.Objective
	}
	if math.IsInf(bound, 1) || (rootSolved && bound < rootBound) {
		bound = rootBound
	}
	// Truncated subtrees were dropped, not explored; their dual bounds
	// cap what the search actually proved.
	if stalledBound < bound {
		bound = stalledBound
	}
	// A truncated search can leave every open node with a bound above
	// the incumbent (their subtrees would have been pruned, not
	// explored). The incumbent is feasible, so the optimum is at most
	// its value: the valid proven bound is the minimum of the two.
	// Without this cap a node-capped search could report Bound >
	// Objective and, through the clamped gap, claim optimality it
	// never proved.
	if best.Status != NoSolutionStatus && best.Objective < bound {
		bound = best.Objective
	}
	best.Bound = bound

	switch {
	case best.Status == InfeasibleStatus:
		return best, ErrInfeasible
	case best.Status == NoSolutionStatus && len(open) == 0 && rootSolved && !lpStalled:
		best.Status = InfeasibleStatus
		return best, ErrInfeasible
	case best.Status == NoSolutionStatus:
		return best, nil
	}
	best.Gap = math.Max(0, (best.Objective-best.Bound)/math.Max(math.Abs(best.Objective), 1))
	if len(open) == 0 || best.Gap <= opts.GapTolerance {
		best.Status = OptimalStatus
		best.Gap = 0
	}
	return best, nil
}

// roundDir picks the branch direction closest to the fractional value so
// the first child explored is the "dive" child.
func roundDir(x float64) float64 {
	if x >= 0.5 {
		return 1
	}
	return 0
}

// dive is the rounding-dive primal heuristic: starting from a node's
// fixes and its relaxation, repeatedly fix every near-integral binary
// (and the least fractional quarter of the rest) to its rounded value
// and re-solve, until the relaxation is integral or infeasible. Each
// round only tightens bounds, so every re-solve warm-starts from the
// previous round's basis. Returns an integral feasible point when one
// falls out.
func dive(p Problem, baseFixes map[int]float64, relaxed []float64, basis *lp.Basis, deadline time.Time, lpObs lp.Observer) ([]float64, float64, bool) {
	fixes := make(map[int]float64, len(p.Binary))
	for k, v := range baseFixes {
		fixes[k] = v
	}
	x := relaxed
	for round := 0; round <= len(p.Binary); round++ {
		if time.Now().After(deadline) {
			return nil, 0, false
		}
		// Partition the unfixed binaries by fractionality.
		type frac struct {
			v int
			d float64
		}
		var fractional []frac
		for _, v := range p.Binary {
			if _, done := fixes[v]; done {
				continue
			}
			f := x[v] - math.Floor(x[v])
			d := math.Min(f, 1-f)
			if d <= intTol {
				fixes[v] = math.Round(x[v])
				continue
			}
			fractional = append(fractional, frac{v, d})
		}
		sub := p.LP.Clone()
		for v, val := range fixes {
			if sub.SetBounds(v, val, val) != nil {
				return nil, 0, false
			}
		}
		if len(fractional) == 0 {
			// Integral: one final solve with everything fixed yields
			// the continuous completion.
			sol, err := lp.SolveWarmDeadlineObs(sub, basis, deadline, lpObs)
			if err != nil {
				return nil, 0, false
			}
			return sol.X, sol.Objective, true
		}
		// Fix the least fractional variables first (a quarter of the
		// remainder per round) so a dive needs O(log n) re-solves.
		sort.Slice(fractional, func(i, j int) bool { return fractional[i].d < fractional[j].d })
		bulk := len(fractional)/4 + 1
		for i := 0; i < bulk; i++ {
			fixes[fractional[i].v] = math.Round(x[fractional[i].v])
			if sub.SetBounds(fractional[i].v, math.Round(x[fractional[i].v]), math.Round(x[fractional[i].v])) != nil {
				return nil, 0, false
			}
		}
		sol, err := lp.SolveWarmDeadlineObs(sub, basis, deadline, lpObs)
		if err != nil {
			return nil, 0, false // dead end
		}
		x = sol.X
		basis = sol.Basis
	}
	return nil, 0, false
}
