package ilp

import (
	"context"
	"math"
	"testing"

	"pesto/internal/lp"
	"pesto/internal/obs"
)

// TestSolveTelemetry checks that a recorder on the context observes the
// search: node and LP counters match the reported node count, and the
// convergence series brackets the optimum (bound ≤ optimum ≤ incumbent
// for a minimization).
func TestSolveTelemetry(t *testing.T) {
	pr := binaryProblem(3)
	for i, c := range []float64{-10, -6, -4} {
		_ = pr.LP.SetObjective(i, c)
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, Rel: lp.LE, RHS: 2})

	sink := obs.NewMemorySink()
	rec := obs.NewRecorder(sink)
	ctx := obs.Into(context.Background(), rec)
	sol, err := Solve(ctx, pr, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := rec.Counter("ilp.nodes"); got != int64(sol.Nodes) {
		t.Errorf("ilp.nodes counter = %d, want %d (sol.Nodes)", got, sol.Nodes)
	}
	if got := rec.Counter("lp.solves"); got < int64(sol.Nodes) {
		t.Errorf("lp.solves = %d, want >= %d (one per node)", got, sol.Nodes)
	}
	if rec.Counter("lp.pivots") <= 0 {
		t.Errorf("lp.pivots = %d, want > 0", rec.Counter("lp.pivots"))
	}
	if rec.Counter("ilp.incumbents") <= 0 {
		t.Errorf("ilp.incumbents = %d, want > 0", rec.Counter("ilp.incumbents"))
	}
	var sawIncumbentSample, sawBoundSample bool
	for _, r := range sink.Records() {
		switch {
		case r.Kind == obs.KindSample && r.Name == "ilp.incumbent":
			sawIncumbentSample = true
			if r.Value < sol.Objective-1e-9 {
				t.Errorf("incumbent sample %g below final objective %g", r.Value, sol.Objective)
			}
		case r.Kind == obs.KindSample && r.Name == "ilp.bound":
			sawBoundSample = true
			if r.Value > sol.Objective+1e-6 {
				t.Errorf("bound sample %g above optimum %g", r.Value, sol.Objective)
			}
		case r.Kind == obs.KindPoint && r.Name == "ilp.incumbent":
			if math.IsInf(r.Value, 0) {
				t.Errorf("incumbent point carries non-finite value")
			}
		}
	}
	if !sawIncumbentSample || !sawBoundSample {
		t.Errorf("convergence series incomplete: incumbent=%v bound=%v", sawIncumbentSample, sawBoundSample)
	}
}

// TestSolveNoRecorderUnchanged pins the no-recorder path to the same
// result as the recorded path — telemetry must not perturb the search.
func TestSolveNoRecorderUnchanged(t *testing.T) {
	pr := binaryProblem(5)
	for i, c := range []float64{-4, -2, -2, -1, -10} {
		_ = pr.LP.SetObjective(i, c)
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{
		{Var: 0, Coef: 12}, {Var: 1, Coef: 2}, {Var: 2, Coef: 1}, {Var: 3, Coef: 1}, {Var: 4, Coef: 4},
	}, Rel: lp.LE, RHS: 15})

	plain, err := Solve(context.Background(), pr, Options{})
	if err != nil {
		t.Fatalf("plain Solve: %v", err)
	}
	ctx := obs.Into(context.Background(), obs.NewRecorder(obs.NewMemorySink()))
	traced, err := Solve(ctx, pr, Options{})
	if err != nil {
		t.Fatalf("traced Solve: %v", err)
	}
	if plain.Objective != traced.Objective || plain.Nodes != traced.Nodes || plain.Status != traced.Status {
		t.Errorf("telemetry perturbed search: plain={obj %g nodes %d %v} traced={obj %g nodes %d %v}",
			plain.Objective, plain.Nodes, plain.Status, traced.Objective, traced.Nodes, traced.Status)
	}
}
