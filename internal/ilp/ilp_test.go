package ilp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pesto/internal/lp"
)

func binaryProblem(n int) Problem {
	p := lp.NewProblem(n)
	bin := make([]int, n)
	for i := 0; i < n; i++ {
		_ = p.SetBounds(i, 0, 1)
		bin[i] = i
	}
	return Problem{LP: p, Binary: bin}
}

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) => a,b => 16.
	pr := binaryProblem(3)
	for i, c := range []float64{-10, -6, -4} {
		_ = pr.LP.SetObjective(i, c)
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, Rel: lp.LE, RHS: 2})
	sol, err := Solve(context.Background(), pr, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != OptimalStatus {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective+16) > 1e-6 {
		t.Fatalf("obj = %g, want -16", sol.Objective)
	}
	if sol.X[0] < 0.5 || sol.X[1] < 0.5 || sol.X[2] > 0.5 {
		t.Fatalf("X = %v, want [1 1 0]", sol.X)
	}
	if sol.Gap != 0 {
		t.Fatalf("gap = %g, want 0", sol.Gap)
	}
}

func TestWeightedKnapsack(t *testing.T) {
	// Classic: weights 12,2,1,1,4 values 4,2,2,1,10, cap 15 => all but
	// the first: value 15 with weight 8... check: choosing 2,1,1,4 ->
	// value 2+2+1+10=15; adding 12 exceeds 15+? 12+2+1+1+4=20>15. Best
	// includes item0? 12+2+1 = 15 -> 4+2+2=8 < 15. So optimum 15.
	weights := []float64{12, 2, 1, 1, 4}
	values := []float64{4, 2, 2, 1, 10}
	pr := binaryProblem(5)
	terms := make([]lp.Term, 5)
	for i := range weights {
		_ = pr.LP.SetObjective(i, -values[i])
		terms[i] = lp.Term{Var: i, Coef: weights[i]}
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 15})
	sol, err := Solve(context.Background(), pr, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Objective+15) > 1e-6 {
		t.Fatalf("obj = %g, want -15", sol.Objective)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 for a binary var has no integer solution. Model
	// via constraints (bounds stay [0,1]).
	pr := binaryProblem(1)
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}}, Rel: lp.GE, RHS: 0.4})
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}}, Rel: lp.LE, RHS: 0.6})
	sol, err := Solve(context.Background(), pr, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (status=%v)", err, sol.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	pr := binaryProblem(1)
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}}, Rel: lp.GE, RHS: 2})
	_, err := Solve(context.Background(), pr, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y >= 1.3 - x, y >= x - 0.4, x binary, y continuous.
	// x=1 -> y >= 0.6; x=0 -> y >= 1.3. Optimum y=0.6 at x=1.
	p := lp.NewProblem(2)
	_ = p.SetBounds(0, 0, 1)
	_ = p.SetObjective(1, 1)
	_ = p.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 1, Coef: 1}, {Var: 0, Coef: 1}}, Rel: lp.GE, RHS: 1.3})
	_ = p.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 1, Coef: 1}, {Var: 0, Coef: -1}}, Rel: lp.GE, RHS: -0.4})
	pr := Problem{LP: p, Binary: []int{0}}
	sol, err := Solve(context.Background(), pr, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Objective-0.6) > 1e-6 || sol.X[0] < 0.5 {
		t.Fatalf("obj=%g x=%v, want 0.6 with x=1", sol.Objective, sol.X)
	}
}

func TestBadBinaryBounds(t *testing.T) {
	p := lp.NewProblem(1)
	_ = p.SetBounds(0, 0, 5)
	if _, err := Solve(context.Background(), Problem{LP: p, Binary: []int{0}}, Options{}); err == nil {
		t.Fatal("expected error for binary var with bounds outside [0,1]")
	}
}

func TestIncumbentCallback(t *testing.T) {
	// The callback supplies an immediately-optimal incumbent; the
	// solver must adopt it and prove optimality.
	pr := binaryProblem(2)
	_ = pr.LP.SetObjective(0, -1)
	_ = pr.LP.SetObjective(1, -1)
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, Rel: lp.LE, RHS: 1})
	called := false
	opts := Options{Incumbent: func(relaxed []float64) ([]float64, float64, bool) {
		called = true
		return []float64{1, 0}, -1, true
	}}
	sol, err := Solve(context.Background(), pr, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !called {
		t.Fatal("incumbent callback never invoked")
	}
	if sol.Status != OptimalStatus || math.Abs(sol.Objective+1) > 1e-6 {
		t.Fatalf("status=%v obj=%g, want optimal -1", sol.Status, sol.Objective)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A 22-var equality knapsack is slow enough that a ~zero time limit
	// stops early, but the incumbent callback still provides a feasible
	// answer.
	n := 22
	pr := binaryProblem(n)
	rng := rand.New(rand.NewSource(7))
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*9
		_ = pr.LP.SetObjective(i, -w)
		terms[i] = lp.Term{Var: i, Coef: w}
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 30})
	opts := Options{
		TimeLimit: time.Millisecond,
		Incumbent: func(relaxed []float64) ([]float64, float64, bool) {
			// All-zeros is always feasible with objective 0.
			return make([]float64, n), 0, true
		},
	}
	sol, err := Solve(context.Background(), pr, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != FeasibleStatus && sol.Status != OptimalStatus {
		t.Fatalf("status = %v, want feasible or optimal", sol.Status)
	}
	if sol.Objective > 0 {
		t.Fatalf("objective %g worse than heuristic incumbent 0", sol.Objective)
	}
}

func TestContextCancel(t *testing.T) {
	pr := binaryProblem(30)
	rng := rand.New(rand.NewSource(3))
	terms := make([]lp.Term, 30)
	for i := 0; i < 30; i++ {
		w := 1 + rng.Float64()*9
		_ = pr.LP.SetObjective(i, -w)
		terms[i] = lp.Term{Var: i, Coef: w}
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 40})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(ctx, pr, Options{TimeLimit: time.Minute})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Nodes > 1 {
		t.Fatalf("cancelled search explored %d nodes", sol.Nodes)
	}
}

// TestPropertyMatchesBruteForce cross-checks B&B against exhaustive
// enumeration on small random binary problems.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7) // up to 8 binaries
		m := 1 + rng.Intn(4)
		pr := binaryProblem(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Round(rng.NormFloat64()*10) / 2
			_ = pr.LP.SetObjective(i, obj[i])
		}
		type consRow struct {
			coefs []float64
			rhs   float64
		}
		rows := make([]consRow, m)
		for k := 0; k < m; k++ {
			coefs := make([]float64, n)
			terms := make([]lp.Term, n)
			for i := 0; i < n; i++ {
				coefs[i] = math.Round(rng.NormFloat64() * 4)
				terms[i] = lp.Term{Var: i, Coef: coefs[i]}
			}
			rhs := math.Round(rng.NormFloat64()*6) + float64(n)/2
			rows[k] = consRow{coefs, rhs}
			_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: rhs})
		}
		// Brute force.
		bestObj := math.Inf(1)
		feasible := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, r := range rows {
				lhs := 0.0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						lhs += r.coefs[i]
					}
				}
				if lhs > r.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			o := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					o += obj[i]
				}
			}
			if o < bestObj {
				bestObj = o
			}
		}
		sol, err := Solve(context.Background(), pr, Options{TimeLimit: 10 * time.Second})
		if !feasible {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil || sol.Status != OptimalStatus {
			return false
		}
		return math.Abs(sol.Objective-bestObj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiveFindsIncumbentWithoutCallback(t *testing.T) {
	// A problem whose relaxation is fractional: pure B&B with the
	// rounding dive must still produce a feasible incumbent quickly.
	n := 14
	pr := binaryProblem(n)
	rng := rand.New(rand.NewSource(11))
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*5
		_ = pr.LP.SetObjective(i, -w)
		terms[i] = lp.Term{Var: i, Coef: w}
	}
	_ = pr.LP.AddConstraint(lp.Constraint{Terms: terms, Rel: lp.LE, RHS: 17})
	sol, err := Solve(context.Background(), pr, Options{TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != OptimalStatus && sol.Status != FeasibleStatus {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective > -10 {
		t.Fatalf("objective %g suspiciously poor", sol.Objective)
	}
	// The incumbent must be integral.
	for _, v := range pr.Binary {
		x := sol.X[v]
		if x > 1e-6 && x < 1-1e-6 {
			t.Fatalf("non-integral incumbent: x[%d]=%g", v, x)
		}
	}
}
