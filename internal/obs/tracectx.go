package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// TraceHeader is the HTTP header carrying a TraceContext across fleet
// hops: the router stamps it on every backend attempt (first try,
// retry, hedge, last resort, warm-sync) and each replica tags its
// telemetry with the parsed context, so one request's spans can be
// stitched back together across replicas afterwards.
const TraceHeader = "X-Pesto-Trace"

// maxTraceIDLen bounds the trace ID so identifiers derived from it —
// the per-hop request IDs `<id>.b<unit>.h<seq>` the router sends as
// X-Request-ID — stay under the service's 120-byte request-ID cap.
const maxTraceIDLen = 96

// TraceContext identifies one request's position in a fleet-wide
// trace: which trace it belongs to, how many hops preceded it, and the
// caller's span at the time the hop was made (0 = no enclosing span).
//
// The wire form is `<id>;hop=<n>;parent=<p>` — see Header and
// ParseTraceHeader. The zero value is "no trace".
type TraceContext struct {
	TraceID string // opaque ID, 1..96 printable ASCII bytes, no ';'
	Hop     int    // hops taken before this one (the next hop's sequence number)
	Parent  uint64 // caller's span ID, 0 when none
}

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// Header renders the wire form `<id>;hop=<n>;parent=<p>`. All three
// fields are always present so parsers need no defaulting.
func (tc TraceContext) Header() string {
	return tc.TraceID + ";hop=" + strconv.Itoa(tc.Hop) + ";parent=" + strconv.FormatUint(tc.Parent, 10)
}

// HopRequestID derives the request ID of hop seq within this trace:
// `<id>.h<seq>`. The router sends it as X-Request-ID so each replica's
// span dump is retrievable under a trace-derived key.
func (tc TraceContext) HopRequestID(seq int) string {
	return tc.TraceID + ".h" + strconv.Itoa(seq)
}

// ValidTraceID reports whether id is acceptable as a trace ID: 1 to 96
// bytes, printable ASCII (0x21..0x7e), and free of the ';' separator.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if b := id[i]; b <= ' ' || b > '~' || b == ';' {
			return false
		}
	}
	return true
}

// ParseTraceHeader parses the wire form produced by Header. The ID
// comes first; the hop and parent fields may appear in either order
// but each at most once. Missing fields default to zero, so a bare
// `<id>` is a valid root context.
func ParseTraceHeader(s string) (TraceContext, error) {
	parts := strings.Split(s, ";")
	tc := TraceContext{TraceID: parts[0]}
	if !ValidTraceID(tc.TraceID) {
		return TraceContext{}, fmt.Errorf("trace header: bad trace ID %q", parts[0])
	}
	var sawHop, sawParent bool
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return TraceContext{}, fmt.Errorf("trace header: field %q is not key=value", part)
		}
		switch key {
		case "hop":
			if sawHop {
				return TraceContext{}, fmt.Errorf("trace header: duplicate hop field")
			}
			sawHop = true
			n, err := strconv.ParseUint(val, 10, 31)
			if err != nil {
				return TraceContext{}, fmt.Errorf("trace header: bad hop %q", val)
			}
			tc.Hop = int(n)
		case "parent":
			if sawParent {
				return TraceContext{}, fmt.Errorf("trace header: duplicate parent field")
			}
			sawParent = true
			p, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return TraceContext{}, fmt.Errorf("trace header: bad parent %q", val)
			}
			tc.Parent = p
		default:
			return TraceContext{}, fmt.Errorf("trace header: unknown field %q", key)
		}
	}
	return tc, nil
}

// NewTraceID generates a fresh random trace ID (16 hex digits).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
