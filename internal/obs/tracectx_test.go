package obs

import (
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: "a", Hop: 0, Parent: 0},
		{TraceID: "deadbeef01234567", Hop: 3, Parent: 42},
		{TraceID: strings.Repeat("x", maxTraceIDLen), Hop: 1<<31 - 1, Parent: 1<<64 - 1},
		{TraceID: "has.dots-and_underscores!", Hop: 7, Parent: 0},
	}
	for _, want := range cases {
		got, err := ParseTraceHeader(want.Header())
		if err != nil {
			t.Fatalf("ParseTraceHeader(%q): %v", want.Header(), err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", want.Header(), got, want)
		}
	}
}

func TestParseTraceHeaderDefaultsAndOrder(t *testing.T) {
	got, err := ParseTraceHeader("abc")
	if err != nil {
		t.Fatalf("bare ID: %v", err)
	}
	if want := (TraceContext{TraceID: "abc"}); got != want {
		t.Fatalf("bare ID: got %+v want %+v", got, want)
	}
	got, err = ParseTraceHeader("abc;parent=9;hop=2")
	if err != nil {
		t.Fatalf("reordered fields: %v", err)
	}
	if want := (TraceContext{TraceID: "abc", Hop: 2, Parent: 9}); got != want {
		t.Fatalf("reordered fields: got %+v want %+v", got, want)
	}
}

func TestParseTraceHeaderRejects(t *testing.T) {
	bad := []string{
		"",                                   // empty ID
		" ;hop=1",                            // space in ID
		"ok;hop=1;hop=2",                     // duplicate hop
		"ok;parent=1;parent=2",               // duplicate parent
		"ok;hop=-1",                          // negative hop
		"ok;hop=1x",                          // trailing junk
		"ok;parent=18446744073709551616",     // parent overflow
		"ok;bogus=1",                         // unknown field
		"ok;hop",                             // not key=value
		"id with space",                      // space in ID
		"tab\tid",                            // control char
		strings.Repeat("x", maxTraceIDLen+1), // too long
	}
	for _, s := range bad {
		if tc, err := ParseTraceHeader(s); err == nil {
			t.Fatalf("ParseTraceHeader(%q) = %+v, want error", s, tc)
		}
	}
}

func TestHopRequestID(t *testing.T) {
	tc := TraceContext{TraceID: "deadbeef"}
	if got, want := tc.HopRequestID(0), "deadbeef.h0"; got != want {
		t.Fatalf("HopRequestID(0) = %q, want %q", got, want)
	}
	if got, want := tc.HopRequestID(12), "deadbeef.h12"; got != want {
		t.Fatalf("HopRequestID(12) = %q, want %q", got, want)
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || !ValidTraceID(a) {
		t.Fatalf("NewTraceID() = %q, want 16 hex digits", a)
	}
	if a == b {
		t.Fatalf("two NewTraceID calls collided: %q", a)
	}
}
