package obs

import "testing"

// FuzzParseTraceHeader holds the trace-header parser to its contract
// on arbitrary input: never panic, and on accepted input produce a
// context whose re-rendered header parses back to the same value
// (render/parse is a fixed point).
func FuzzParseTraceHeader(f *testing.F) {
	f.Add("deadbeef01234567;hop=2;parent=17")
	f.Add("abc")
	f.Add("abc;parent=9;hop=2")
	f.Add("")
	f.Add(";hop=1")
	f.Add("ok;hop=1;hop=2")
	f.Add("ok;hop=18446744073709551616")
	f.Add("id with space;hop=0")
	f.Add("x;bogus=1")
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceHeader(s)
		if err != nil {
			if tc != (TraceContext{}) {
				t.Fatalf("error path returned non-zero context %+v for %q", tc, s)
			}
			return
		}
		if !ValidTraceID(tc.TraceID) {
			t.Fatalf("accepted invalid trace ID %q from %q", tc.TraceID, s)
		}
		if tc.Hop < 0 {
			t.Fatalf("accepted negative hop %d from %q", tc.Hop, s)
		}
		again, err := ParseTraceHeader(tc.Header())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", tc.Header(), s, err)
		}
		if again != tc {
			t.Fatalf("render/parse not a fixed point: %+v -> %q -> %+v", tc, tc.Header(), again)
		}
	})
}
