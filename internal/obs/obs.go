// Package obs is the telemetry core of the Pesto stack: hierarchical
// spans, monotonic counters and time-series samples, delivered to
// pluggable sinks. It is stdlib-only and dependency-free by design —
// every other package may import it, it imports nothing of Pesto.
//
// The contract that makes it safe to thread through hot paths is the
// nil no-op: a nil *Recorder (the state of every call site when no
// telemetry is configured) turns every method into a pointer check and
// a return. Start on a context without a recorder returns the context
// unchanged and a nil *Span whose End is equally free. The overhead of
// the disabled path is held to <2% of the placement pipeline by
// BenchmarkObsOverhead (BENCH_obs.json).
//
// Recorders travel by context (Into/From), so the solver layers —
// placement ladder, branch and bound, LP simplex, worker engine,
// serving layer — need no new parameters; spans nest across layers
// because Start stores the current span back into the context.
//
// See DESIGN.md, "Observability model".
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute of a span or event. Values are
// strings; use the typed constructors (Int, F64, Dur) for non-string
// values so formatting is uniform across sinks.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// F64 builds a float attribute with shortest round-trip formatting.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)} }

// Dur builds a duration attribute in Go duration syntax.
func Dur(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Kind classifies a Record.
type Kind int

const (
	// KindSpan is a completed span: Ts is its start offset, Dur its
	// length, ID/Parent its place in the hierarchy.
	KindSpan Kind = iota + 1
	// KindPoint is an instantaneous event.
	KindPoint
	// KindSample is one sample of a named time series (Value carries
	// the sampled quantity) — e.g. the branch-and-bound incumbent and
	// lower bound over time.
	KindSample
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindPoint:
		return "point"
	case KindSample:
		return "sample"
	default:
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Record is one telemetry record as delivered to sinks. Timestamps are
// offsets from the recorder's epoch (monotonic), so records from one
// recorder are mutually comparable and a trace starts near zero.
type Record struct {
	Kind   Kind
	Name   string
	Ts     time.Duration
	Dur    time.Duration // spans only
	ID     uint64        // spans only; unique within the recorder
	Parent uint64        // spans only; 0 = root
	Value  float64       // samples only
	Attrs  []Attr
}

// Sink consumes records. Implementations must be safe for concurrent
// use: spans end on whatever goroutine ran the work.
type Sink interface {
	Record(Record)
}

// Recorder is the telemetry hub: it stamps records against its epoch,
// assigns span IDs, accumulates counters and fans records out to its
// sinks. All methods are safe for concurrent use and all are no-ops on
// a nil receiver.
type Recorder struct {
	epoch  time.Time
	sinks  []Sink
	nextID atomic.Uint64

	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// NewRecorder builds a recorder delivering to the given sinks. A
// recorder with no sinks still accumulates counters.
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		sinks:    sinks,
		counters: make(map[string]*atomic.Int64),
	}
}

// Now is the offset from the recorder's epoch.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch)
}

// emit stamps nothing — records arrive fully formed.
func (r *Recorder) emit(rec Record) {
	for _, s := range r.sinks {
		s.Record(rec)
	}
}

// Add increments the named counter. Counters are cumulative and cheap
// (one map lookup plus an atomic add); they are read back with
// Counters/Counter and optionally flushed to sinks with FlushCounters.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = new(atomic.Int64)
		r.counters[name] = c
	}
	r.mu.Unlock()
	c.Add(delta)
}

// Counter reads one counter (zero when never incremented).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Counters snapshots every counter.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// FlushCounters emits every counter as a final KindSample record named
// "counter.<name>", in sorted order so sinks see a deterministic
// sequence. Call it once, after the instrumented work finishes.
func (r *Recorder) FlushCounters() {
	if r == nil {
		return
	}
	snap := r.Counters()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	now := r.Now()
	for _, name := range names {
		r.emit(Record{Kind: KindSample, Name: "counter." + name, Ts: now, Value: float64(snap[name])})
	}
}

// Point emits an instantaneous event.
func (r *Recorder) Point(name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.emit(Record{Kind: KindPoint, Name: name, Ts: r.Now(), Attrs: attrs})
}

// Sample emits one sample of the named time series. Sinks that render
// timelines (the Chrome Trace sink path) plot repeated samples of one
// name as a counter track — the branch-and-bound convergence series
// (incumbent vs. lower bound) is emitted this way.
func (r *Recorder) Sample(name string, v float64, attrs ...Attr) {
	if r == nil {
		return
	}
	r.emit(Record{Kind: KindSample, Name: name, Ts: r.Now(), Value: v, Attrs: attrs})
}

// Span is one in-flight span. A nil *Span (the no-recorder case) is
// valid: End and Annotate are no-ops. A span belongs to the goroutine
// that started it until End; Annotate must not race with End.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	attrs  []Attr
}

// Annotate appends attributes to the span before it ends.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span, appending any final attributes, and delivers
// it to the recorder's sinks.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
	s.rec.emit(Record{
		Kind:   KindSpan,
		Name:   s.name,
		Ts:     s.start,
		Dur:    s.rec.Now() - s.start,
		ID:     s.id,
		Parent: s.parent,
		Attrs:  s.attrs,
	})
}

type recorderKey struct{}
type spanKey struct{}

// Into returns a context carrying the recorder. Instrumented layers
// retrieve it with From and start spans with Start.
func Into(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// From extracts the context's recorder, nil when none was attached.
// Every Recorder method tolerates the nil, so callers need no check.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// Start begins a span under the context's recorder and current span,
// returning a context carrying the new span (so child spans nest) and
// the span itself. Without a recorder it returns the context unchanged
// and a nil span — the disabled path allocates nothing.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	r := From(ctx)
	if r == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.id
	}
	s := &Span{
		rec:    r,
		id:     r.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  r.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey{}, s), s
}
