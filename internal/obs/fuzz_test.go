package obs

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzAttrEncode holds AppendAttrsJSON to its contract on arbitrary
// input: never panic, always emit valid JSON, and when keys are unique
// and values are well-formed UTF-8, survive a decode round trip.
func FuzzAttrEncode(f *testing.F) {
	f.Add("stage", "ilp-exact", "nodes", "12")
	f.Add("", "", "", "")
	f.Add("q\"uote", "back\\slash", "new\nline", "tab\tchar")
	f.Add("\x00\x01\x02", "\x1f", "héllo", "世界")
	f.Add("dup", "a", "dup", "b")
	f.Add("bad\xff", "utf8\xc3", "\xed\xa0\x80", "ok")
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 string) {
		attrs := []Attr{{Key: k1, Value: v1}, {Key: k2, Value: v2}}
		out := AppendAttrsJSON(nil, attrs)
		if !json.Valid(out) {
			t.Fatalf("invalid JSON for %q=%q %q=%q: %s", k1, v1, k2, v2, out)
		}
		var m map[string]string
		if err := json.Unmarshal(out, &m); err != nil {
			t.Fatalf("unmarshal failed: %v\n%s", err, out)
		}
		if k1 != k2 && utf8.ValidString(k1) && utf8.ValidString(v1) {
			if got, ok := m[k1]; !ok {
				t.Fatalf("key %q lost in %s", k1, out)
			} else if utf8.ValidString(v1) && got != v1 {
				t.Fatalf("value for %q = %q, want %q", k1, got, v1)
			}
		}
		// Appending to a prefix must leave the prefix intact.
		withPrefix := AppendAttrsJSON([]byte("xx"), attrs)
		if string(withPrefix[:2]) != "xx" || string(withPrefix[2:]) != string(out) {
			t.Fatalf("prefix not preserved: %s", withPrefix)
		}
	})
}
