package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.Point("p")
	r.Sample("s", 1.5)
	r.FlushCounters()
	if got := r.Counter("x"); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
	if got := r.Counters(); got != nil {
		t.Fatalf("nil Counters = %v, want nil", got)
	}
	ctx := context.Background()
	if got := Into(ctx, nil); got != ctx {
		t.Fatal("Into(nil) should return ctx unchanged")
	}
	ctx2, sp := Start(ctx, "work")
	if ctx2 != ctx {
		t.Fatal("Start without recorder should return ctx unchanged")
	}
	if sp != nil {
		t.Fatal("Start without recorder should return nil span")
	}
	sp.Annotate(String("k", "v"))
	sp.End()
}

func TestSpanHierarchy(t *testing.T) {
	sink := NewMemorySink()
	rec := NewRecorder(sink)
	ctx := Into(context.Background(), rec)

	ctx, root := Start(ctx, "root", String("stage", "ilp"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grand")
	grand.End()
	child.End(Int("nodes", 7))
	// Sibling of child, still under root.
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	recs := sink.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	root_, child_, grand_, sib_ := byName["root"], byName["child"], byName["grand"], byName["sibling"]
	if root_.Parent != 0 {
		t.Errorf("root parent = %d, want 0", root_.Parent)
	}
	if child_.Parent != root_.ID {
		t.Errorf("child parent = %d, want root id %d", child_.Parent, root_.ID)
	}
	if grand_.Parent != child_.ID {
		t.Errorf("grand parent = %d, want child id %d", grand_.Parent, child_.ID)
	}
	if sib_.Parent != root_.ID {
		t.Errorf("sibling parent = %d, want root id %d", sib_.Parent, root_.ID)
	}
	ids := map[uint64]bool{}
	for _, r := range recs {
		if r.Kind != KindSpan {
			t.Errorf("record %q kind = %v, want span", r.Name, r.Kind)
		}
		if r.ID == 0 || ids[r.ID] {
			t.Errorf("span %q has zero or duplicate id %d", r.Name, r.ID)
		}
		ids[r.ID] = true
		if r.Dur < 0 {
			t.Errorf("span %q has negative duration", r.Name)
		}
	}
	if len(child_.Attrs) != 1 || child_.Attrs[0].Key != "nodes" || child_.Attrs[0].Value != "7" {
		t.Errorf("child attrs = %v, want [{nodes 7}]", child_.Attrs)
	}
	if len(root_.Attrs) != 1 || root_.Attrs[0] != String("stage", "ilp") {
		t.Errorf("root attrs = %v", root_.Attrs)
	}
}

func TestCountersConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rec.Add("lp.pivots", 2)
				rec.Add("ilp.nodes", 1)
			}
		}()
	}
	wg.Wait()
	if got := rec.Counter("lp.pivots"); got != 16000 {
		t.Errorf("lp.pivots = %d, want 16000", got)
	}
	if got := rec.Counter("ilp.nodes"); got != 8000 {
		t.Errorf("ilp.nodes = %d, want 8000", got)
	}
	snap := rec.Counters()
	if snap["lp.pivots"] != 16000 || snap["ilp.nodes"] != 8000 {
		t.Errorf("Counters() = %v", snap)
	}
	if got := rec.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

func TestFlushCountersSorted(t *testing.T) {
	sink := NewMemorySink()
	rec := NewRecorder(sink)
	rec.Add("zeta", 3)
	rec.Add("alpha", 1)
	rec.Add("mid", 2)
	rec.FlushCounters()
	recs := sink.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	wantNames := []string{"counter.alpha", "counter.mid", "counter.zeta"}
	wantVals := []float64{1, 2, 3}
	for i, r := range recs {
		if r.Kind != KindSample || r.Name != wantNames[i] || r.Value != wantVals[i] {
			t.Errorf("record %d = {%v %q %g}, want {sample %q %g}", i, r.Kind, r.Name, r.Value, wantNames[i], wantVals[i])
		}
	}
}

func TestPointAndSample(t *testing.T) {
	sink := NewMemorySink()
	rec := NewRecorder(sink)
	rec.Point("incumbent", F64("objective", 12.5))
	rec.Sample("ilp.bound", 3.25, Int("batch", 2))
	recs := sink.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Kind != KindPoint || recs[0].Name != "incumbent" {
		t.Errorf("point = %+v", recs[0])
	}
	if recs[1].Kind != KindSample || recs[1].Value != 3.25 {
		t.Errorf("sample = %+v", recs[1])
	}
	if recs[1].Ts < recs[0].Ts {
		t.Errorf("timestamps regressed: %v then %v", recs[0].Ts, recs[1].Ts)
	}
}

func TestBoundedMemorySink(t *testing.T) {
	sink := NewBoundedMemorySink(2)
	rec := NewRecorder(sink)
	rec.Point("a")
	rec.Point("b")
	rec.Point("c")
	if sink.Len() != 2 {
		t.Errorf("Len = %d, want 2", sink.Len())
	}
	if sink.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", sink.Dropped())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewJSONLSink(&buf))
	ctx := Into(context.Background(), rec)
	_, sp := Start(ctx, "solve", String("stage", "ilp-exact"))
	sp.End(Int("nodes", 3))
	rec.Sample("ilp.incumbent", 9.5)
	rec.Point("evicted")

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	span := lines[0]
	if span["msg"] != "solve" {
		t.Errorf("span msg = %v", span["msg"])
	}
	grp, ok := span["obs"].(map[string]any)
	if !ok {
		t.Fatalf("span obs group missing: %v", span)
	}
	if grp["kind"] != "span" || grp["stage"] != "ilp-exact" || grp["nodes"] != "3" {
		t.Errorf("span group = %v", grp)
	}
	if grp["dur_us"] == nil || grp["span"] == nil {
		t.Errorf("span group missing dur_us/span: %v", grp)
	}
	sample := lines[1]["obs"].(map[string]any)
	if sample["kind"] != "sample" || sample["value"] != 9.5 {
		t.Errorf("sample group = %v", sample)
	}
	point := lines[2]["obs"].(map[string]any)
	if point["kind"] != "point" {
		t.Errorf("point group = %v", point)
	}
}

func TestAppendAttrsJSON(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
		want  string
	}{
		{"empty", nil, `{}`},
		{"one", []Attr{String("k", "v")}, `{"k":"v"}`},
		{"two", []Attr{String("a", "1"), Int("b", 2)}, `{"a":"1","b":"2"}`},
		{"escape", []Attr{String("q", "a\"b\\c\nd\te\rf")}, `{"q":"a\"b\\c\nd\te\rf"}`},
		{"control", []Attr{String("c", "\x01")}, `{"c":"\u0001"}`},
		{"unicode", []Attr{String("u", "héllo—世界")}, `{"u":"héllo—世界"}`},
		{"invalid-utf8", []Attr{String("x", "a\xffb")}, `{"x":"a` + "�" + `b"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := string(AppendAttrsJSON(nil, tc.attrs))
			if got != tc.want {
				t.Errorf("AppendAttrsJSON = %s, want %s", got, tc.want)
			}
			if !json.Valid([]byte(got)) {
				t.Errorf("output not valid JSON: %s", got)
			}
		})
	}
}

func TestAppendAttrsJSONRoundTrip(t *testing.T) {
	attrs := []Attr{String("stage", "warm-start+refine"), Dur("elapsed", 1500*time.Millisecond), Bool("degraded", true)}
	var m map[string]string
	if err := json.Unmarshal(AppendAttrsJSON(nil, attrs), &m); err != nil {
		t.Fatal(err)
	}
	if m["stage"] != "warm-start+refine" || m["elapsed"] != "1.5s" || m["degraded"] != "true" {
		t.Errorf("round trip = %v", m)
	}
}

func TestConcurrentSpansAndSinks(t *testing.T) {
	sink := NewMemorySink()
	rec := NewRecorder(sink)
	ctx := Into(context.Background(), rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := Start(ctx, "task", Int("worker", int64(g)))
				rec.Add("engine.tasks", 1)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if sink.Len() != 400 {
		t.Errorf("records = %d, want 400", sink.Len())
	}
	if rec.Counter("engine.tasks") != 400 {
		t.Errorf("engine.tasks = %d, want 400", rec.Counter("engine.tasks"))
	}
	seen := map[uint64]bool{}
	for _, r := range sink.Records() {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "work")
		_ = c
		sp.End()
	}
}

func BenchmarkAddDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("x", 1)
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	rec := NewRecorder(NewMemorySink())
	ctx := Into(context.Background(), rec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "work")
		sp.End()
	}
}
