package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"unicode/utf8"
)

// MemorySink buffers records in memory; the test and debug sink. It
// also backs pestod's per-request span store: bounded, snapshot-able,
// safe for concurrent use.
type MemorySink struct {
	mu      sync.Mutex
	records []Record
	limit   int // 0 = unbounded
	dropped int
}

// NewMemorySink builds an unbounded memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// NewBoundedMemorySink builds a memory sink keeping at most limit
// records; further records are counted as dropped, not stored.
func NewBoundedMemorySink(limit int) *MemorySink { return &MemorySink{limit: limit} }

// Record implements Sink.
func (m *MemorySink) Record(rec Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.limit > 0 && len(m.records) >= m.limit {
		m.dropped++
		return
	}
	m.records = append(m.records, rec)
}

// Records snapshots the buffered records.
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.records))
	copy(out, m.records)
	return out
}

// Dropped reports how many records the bound discarded.
func (m *MemorySink) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Len reports the number of buffered records.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// SlogSink delivers records as structured log lines. Combined with
// slog.NewJSONHandler this is the JSONL sink behind `-obs-log`.
type SlogSink struct {
	log *slog.Logger
}

// NewSlogSink wraps an existing logger (pestod's request logger).
func NewSlogSink(log *slog.Logger) *SlogSink { return &SlogSink{log: log} }

// NewJSONLSink builds a sink writing one JSON object per record to w.
// The handler serializes writes, so the sink is safe for concurrent
// use like any other.
func NewJSONLSink(w io.Writer) *SlogSink {
	return &SlogSink{log: slog.New(slog.NewJSONHandler(w, nil))}
}

// Record implements Sink.
func (s *SlogSink) Record(rec Record) {
	args := make([]any, 0, 10+2*len(rec.Attrs))
	args = append(args, "kind", rec.Kind.String(), "ts_us", rec.Ts.Microseconds())
	switch rec.Kind {
	case KindSpan:
		args = append(args, "dur_us", rec.Dur.Microseconds(), "span", rec.ID)
		if rec.Parent != 0 {
			args = append(args, "parent", rec.Parent)
		}
	case KindSample:
		args = append(args, "value", rec.Value)
	}
	for _, a := range rec.Attrs {
		args = append(args, a.Key, a.Value)
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, rec.Name, slog.Group("obs", args...))
}

const hexDigits = "0123456789abcdef"

// AppendAttrsJSON appends the attribute list to dst as a canonical
// JSON object — attrs in argument order, string values, manual
// escaping (control characters as \u00XX, invalid UTF-8 replaced) —
// and returns the extended slice. It is the encoder behind the spans
// debug endpoint and the Chrome Trace args, hand-rolled so the hot
// path allocates nothing beyond dst; FuzzAttrEncode holds it to
// json.Valid output for arbitrary input.
func AppendAttrsJSON(dst []byte, attrs []Attr) []byte {
	dst = append(dst, '{')
	for i, a := range attrs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, a.Key)
		dst = append(dst, ':')
		dst = appendJSONString(dst, a.Value)
	}
	return append(dst, '}')
}

func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"' || b == '\\':
				dst = append(dst, '\\', b)
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			case b < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			default:
				dst = append(dst, b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, `�`...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
