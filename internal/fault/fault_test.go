package fault

import (
	"errors"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("seed=42;straggler:p=0.05,mult=8;link:1-2,scale=4,stall=100us@1ms;link:*,scale=2;mem:2,frac=0.5@2ms;fail:2@5ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 42 {
		t.Errorf("Seed = %d", spec.Seed)
	}
	st := spec.Straggler
	if st == nil || st.P != 0.05 || st.Mult != 8 || st.Tail != 1.5 {
		t.Errorf("Straggler = %+v, want p=0.05 mult=8 tail=1.5 (default)", st)
	}
	if len(spec.Links) != 2 {
		t.Fatalf("Links = %d, want 2", len(spec.Links))
	}
	lf := spec.Links[0]
	if lf.From != 1 || lf.To != 2 || lf.Scale != 4 || lf.StallDur != 100*time.Microsecond || lf.StallAt != time.Millisecond {
		t.Errorf("link fault = %+v", lf)
	}
	if !spec.Links[1].Wildcard || spec.Links[1].Scale != 2 {
		t.Errorf("wildcard link = %+v", spec.Links[1])
	}
	if len(spec.Mem) != 1 || spec.Mem[0].Dev != 2 || spec.Mem[0].Frac != 0.5 || spec.Mem[0].At != 2*time.Millisecond {
		t.Errorf("mem fault = %+v", spec.Mem)
	}
	if len(spec.Fail) != 1 || spec.Fail[0].Dev != 2 || spec.Fail[0].At != 5*time.Millisecond {
		t.Errorf("fail = %+v", spec.Fail)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if spec.Straggler != nil || spec.Links != nil || spec.Mem != nil || spec.Fail != nil {
		t.Fatalf("empty spec not empty: %+v", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"seed=abc",
		"straggler:p=2",           // p > 1
		"straggler:p=NaN",         // NaN
		"straggler:mult=0.5",      // mult < 1
		"straggler:tail=0",        // tail <= 0
		"straggler:tail=+Inf",     // inf
		"straggler:wat=1",         // unknown key
		"straggler:p",             // not key=value
		"link:12",                 // no FROM-TO
		"link:a-b",                // bad endpoints
		"link:1-2,scale=0",        // scale <= 0
		"link:1-2,stall=1ms",      // missing @AT
		"link:1-2,stall=-1ms@1ms", // negative duration
		"link:1-2,huh=3",          // unknown key
		"mem:1",                   // missing frac
		"mem:1,frac=1.5@1ms",      // frac > 1
		"mem:1,frac=0.5",          // missing @AT
		"mem:-2,frac=0.5@1ms",     // device out of range
		"mem:99999999,frac=0.5@1ms",
		"fail:1",     // missing @AT
		"fail:x@1ms", // bad device
		"fail:1@-1s", // negative time
	}
	for _, c := range cases {
		if _, err := ParseSpec(c); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrBadSpec", c, err)
		}
	}
}

func TestOpDurationPureAndHeavyTailed(t *testing.T) {
	in := New(Spec{Seed: 7, Straggler: &Straggler{P: 0.3, Mult: 4, Tail: 1.5}})
	base := 100 * time.Microsecond
	straggled := 0
	const nOps = 2000
	for id := graph.NodeID(0); id < nOps; id++ {
		d1 := in.OpDuration(id, 1, 0, base)
		// Purity: same (seed, id) at a different device, start time and
		// repeat call gives the same answer.
		if d2 := in.OpDuration(id, 2, time.Second, base); d2 != d1 {
			t.Fatalf("op %d: duration depends on device/start: %v vs %v", id, d1, d2)
		}
		if d1 < base {
			t.Fatalf("op %d: injected duration %v below base %v", id, d1, base)
		}
		if d1 > base {
			straggled++
			if d1 < 4*base {
				t.Fatalf("op %d: straggler factor %.2f below mult", id, float64(d1)/float64(base))
			}
			if d1 > time.Duration(1e4*float64(base)) {
				t.Fatalf("op %d: straggler factor uncapped: %v", id, d1)
			}
		}
	}
	frac := float64(straggled) / nOps
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("straggler fraction %.3f far from p=0.3", frac)
	}
	// A different seed straggles a different subset.
	other := New(Spec{Seed: 8, Straggler: &Straggler{P: 0.3, Mult: 4, Tail: 1.5}})
	same := 0
	for id := graph.NodeID(0); id < nOps; id++ {
		if (in.OpDuration(id, 1, 0, base) > base) == (other.OpDuration(id, 1, 0, base) > base) {
			same++
		}
	}
	if same == nOps {
		t.Fatal("seed has no effect on straggler selection")
	}
}

func TestTransferDurationScaleAndStall(t *testing.T) {
	in := New(Spec{Links: []LinkFault{{From: 1, To: 2, Scale: 4, StallAt: time.Millisecond, StallDur: 100 * time.Microsecond}}})
	base := 10 * time.Microsecond
	if got := in.TransferDuration(1, 2, 1024, 0, base); got != 4*base {
		t.Errorf("scaled transfer = %v, want %v", got, 4*base)
	}
	if got := in.TransferDuration(2, 1, 1024, 0, base); got != base {
		t.Errorf("unmatched link perturbed: %v", got)
	}
	// A start inside the stall window is held to the window end.
	start := time.Millisecond + 30*time.Microsecond
	want := 4*base + (70 * time.Microsecond)
	if got := in.TransferDuration(1, 2, 1024, start, base); got != want {
		t.Errorf("stalled transfer = %v, want %v", got, want)
	}
	// At or past the window end: no stall.
	if got := in.TransferDuration(1, 2, 1024, time.Millisecond+100*time.Microsecond, base); got != 4*base {
		t.Errorf("post-window transfer = %v, want %v", got, 4*base)
	}
	wild := New(Spec{Links: []LinkFault{{Wildcard: true, Scale: 2}}})
	if got := wild.TransferDuration(3, 4, 1, 0, base); got != 2*base {
		t.Errorf("wildcard link = %v, want %v", got, 2*base)
	}
}

func TestDeviceCapacityShrinks(t *testing.T) {
	in := New(Spec{Mem: []MemFault{
		{Dev: 2, Frac: 0.5, At: time.Millisecond},
		{Dev: 2, Frac: 0.25, At: 2 * time.Millisecond},
	}})
	const base = int64(1000)
	if got := in.DeviceCapacity(2, 0, base); got != base {
		t.Errorf("capacity before fault = %d", got)
	}
	if got := in.DeviceCapacity(2, time.Millisecond, base); got != 500 {
		t.Errorf("capacity after first fault = %d, want 500", got)
	}
	if got := in.DeviceCapacity(2, 3*time.Millisecond, base); got != 250 {
		t.Errorf("capacity after both faults = %d, want 250 (min wins)", got)
	}
	if got := in.DeviceCapacity(1, 3*time.Millisecond, base); got != base {
		t.Errorf("unrelated device shrunk to %d", got)
	}
}

func TestFailureTimeEarliestWins(t *testing.T) {
	in := New(Spec{Fail: []DeviceFailure{{Dev: 1, At: 5 * time.Millisecond}, {Dev: 1, At: 2 * time.Millisecond}}})
	at, ok := in.FailureTime(1)
	if !ok || at != 2*time.Millisecond {
		t.Fatalf("FailureTime = %v,%v, want 2ms,true", at, ok)
	}
	if _, ok := in.FailureTime(2); ok {
		t.Fatal("unconfigured device reported a failure time")
	}
}

func TestScheduleCanonical(t *testing.T) {
	const s = "seed=9;straggler:p=0.1,mult=4;fail:3@2ms;fail:1@1ms;mem:2,frac=0.5@1ms"
	a, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseSpec(s)
	if New(a).Schedule() != New(b).Schedule() {
		t.Fatal("identical specs render different schedules")
	}
	if New(a).Schedule() == "" {
		t.Fatal("empty schedule")
	}
}

func TestInjectorIsSimInjector(t *testing.T) {
	var _ sim.Injector = New(Spec{})
}

// FuzzParseSpec: arbitrary bytes must never panic, and every accepted
// spec must be realizable as an injector whose hooks are callable.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=42;straggler:p=0.05,mult=8;link:1-2,scale=4,stall=100us@1ms;mem:2,frac=0.5@2ms;fail:2@5ms")
	f.Add("link:*,scale=2")
	f.Add("straggler:p=1,tail=0.1")
	f.Add(";;;")
	f.Add("seed=-1;fail:0@0s")
	f.Add("mem:0,frac=0@0s")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("non-ErrBadSpec error: %v", err)
			}
			return
		}
		in := New(spec)
		_ = in.Schedule()
		if d := in.OpDuration(3, 1, 0, time.Microsecond); d < 0 {
			t.Fatalf("negative op duration %v", d)
		}
		_ = in.TransferDuration(1, 2, 1024, 0, time.Microsecond)
		if c := in.DeviceCapacity(1, time.Millisecond, 1<<20); c < 0 || c > 1<<20 {
			t.Fatalf("capacity %d outside [0, base]", c)
		}
		_, _ = in.FailureTime(1)
	})
}
