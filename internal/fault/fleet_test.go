package fault

import (
	"errors"
	"testing"
	"time"
)

func TestParseFleetSpec(t *testing.T) {
	spec, err := ParseFleetSpec("rkill:r1@2s,restart=1s; probehole:r0@500ms,dur=250ms; rlat:r2@1s,dur=2s,add=50ms; rkill:r2@10s")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Kills) != 2 || len(spec.Blackholes) != 1 || len(spec.Spikes) != 1 {
		t.Fatalf("parsed %+v", spec)
	}
	k := spec.Kills[0]
	if k.Replica != "r1" || k.At != 2*time.Second || k.Restart != time.Second {
		t.Fatalf("kill %+v", k)
	}
	if spec.Kills[1].Restart != 0 {
		t.Fatalf("permanent kill got restart %v", spec.Kills[1].Restart)
	}
	b := spec.Blackholes[0]
	if b.Replica != "r0" || b.At != 500*time.Millisecond || b.Dur != 250*time.Millisecond {
		t.Fatalf("blackhole %+v", b)
	}
	sp := spec.Spikes[0]
	if sp.Replica != "r2" || sp.Dur != 2*time.Second || sp.Add != 50*time.Millisecond {
		t.Fatalf("spike %+v", sp)
	}
}

func TestParseFleetSpecEmpty(t *testing.T) {
	spec, err := ParseFleetSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Kills)+len(spec.Blackholes)+len(spec.Spikes) != 0 {
		t.Fatalf("empty spec parsed to %+v", spec)
	}
}

func TestParseFleetSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus:r0@1s",
		"rkill:r0",                     // missing @AT
		"rkill:@1s",                    // empty id
		"rkill:r0@-1s",                 // negative time
		"rkill:r0@1s,restart=0s",       // zero restart
		"rkill:r0@1s,cooldown=1s",      // unknown option
		"probehole:r0@1s",              // missing dur
		"probehole:r0@1s,len=1s",       // unknown key
		"rlat:r0@1s,dur=1s",            // missing add
		"rlat:r0@1s,dur=1s,add=0s",     // zero add
		"rlat:r0@1s,dur=1s,add=1s,x=1", // trailing garbage
		"rkill:a=b@1s",                 // metacharacter in id
	} {
		if _, err := ParseFleetSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseFleetSpec(%q) err = %v, want ErrBadSpec", bad, err)
		}
	}
}

func TestFleetInjectorWindows(t *testing.T) {
	spec, err := ParseFleetSpec("rkill:r1@2s,restart=1s;rkill:r2@5s;probehole:r0@1s,dur=500ms;rlat:r0@1s,dur=1s,add=20ms;rlat:r0@1500ms,dur=1s,add=30ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewFleet(spec)

	// Kill with restart: down exactly during [2s, 3s).
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{0, false}, {1999 * time.Millisecond, false},
		{2 * time.Second, true}, {2999 * time.Millisecond, true},
		{3 * time.Second, false}, {time.Hour, false},
	} {
		if got := in.Killed("r1", tc.at); got != tc.down {
			t.Errorf("Killed(r1, %v) = %v, want %v", tc.at, got, tc.down)
		}
	}
	// Permanent kill: down forever after At.
	if in.Killed("r2", 4*time.Second) || !in.Killed("r2", 5*time.Second) || !in.Killed("r2", time.Hour) {
		t.Error("permanent kill window wrong")
	}
	// Unknown replica: never killed.
	if in.Killed("r9", time.Hour) {
		t.Error("unconfigured replica reported killed")
	}
	// Blackhole window [1s, 1.5s).
	if in.Blackholed("r0", 999*time.Millisecond) || !in.Blackholed("r0", time.Second) || in.Blackholed("r0", 1500*time.Millisecond) {
		t.Error("blackhole window wrong")
	}
	// Latency spikes stack in their overlap [1.5s, 2s).
	for _, tc := range []struct {
		at   time.Duration
		want time.Duration
	}{
		{500 * time.Millisecond, 0},
		{time.Second, 20 * time.Millisecond},
		{1600 * time.Millisecond, 50 * time.Millisecond},
		{2200 * time.Millisecond, 30 * time.Millisecond},
		{3 * time.Second, 0},
	} {
		if got := in.ExtraLatency("r0", tc.at); got != tc.want {
			t.Errorf("ExtraLatency(r0, %v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestFleetInjectorPure holds the replayability contract: repeated
// queries at the same elapsed time return identical answers (no hidden
// state, no stream consumption).
func TestFleetInjectorPure(t *testing.T) {
	spec, err := ParseFleetSpec("rkill:r1@1s,restart=2s;rlat:r1@500ms,dur=4s,add=5ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewFleet(spec)
	for i := 0; i < 3; i++ {
		if !in.Killed("r1", 1500*time.Millisecond) {
			t.Fatal("answer changed across calls")
		}
		if in.ExtraLatency("r1", time.Second) != 5*time.Millisecond {
			t.Fatal("latency answer changed across calls")
		}
	}
}

// FuzzParseFleetSpec: arbitrary bytes must never panic, and every
// accepted spec must be realizable as an injector whose queries are
// callable at arbitrary times.
func FuzzParseFleetSpec(f *testing.F) {
	f.Add("rkill:r1@2s,restart=1s;probehole:r0@500ms,dur=250ms;rlat:r2@1s,dur=2s,add=50ms")
	f.Add("rkill:a@0s")
	f.Add(";;;")
	f.Add("rlat:x@1h,dur=0s,add=1ns")
	f.Add("probehole:p@999999h,dur=999999h")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseFleetSpec(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("non-ErrBadSpec error: %v", err)
			}
			return
		}
		in := NewFleet(spec)
		for _, at := range []time.Duration{0, time.Millisecond, time.Second, time.Hour} {
			_ = in.Killed("r1", at)
			_ = in.Blackholed("r0", at)
			if d := in.ExtraLatency("r2", at); d < 0 {
				t.Fatalf("negative extra latency %v", d)
			}
		}
	})
}
