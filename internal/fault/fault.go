// Package fault is a deterministic, seeded fault injector for the
// Pesto substrates. It models the failure modes a production placement
// service must survive — the run-to-run compute variance the paper
// measures in Figure 4a taken to its heavy tail, degraded or stalling
// interconnects, GPUs whose effective memory shrinks mid-step (other
// tenants, fragmentation), and whole-device failure — and plugs into
// both the discrete-event simulator (sim.RunInjected) and the
// concurrent runtime executor (runtime.Options.Injector) through the
// sim.Injector hook interface.
//
// Everything is a pure function of the spec and its seed: the same
// spec produces byte-identical injected event traces across repeated
// runs, across engines and across worker counts. Per-operation
// randomness is derived by hashing (seed, node ID), never by drawing
// from a shared stream, so concurrency cannot reorder it.
//
// Specs have a compact textual form for the -fault-spec CLI flag:
//
//	seed=42;straggler:p=0.05,mult=8;link:1-2,scale=4,stall=100us@1ms;mem:2,frac=0.5@2ms;fail:2@5ms
//
// Clauses are ';'-separated:
//
//	seed=N                                 seed for straggler sampling
//	straggler:p=P,mult=M[,tail=A]          each op straggles with prob P;
//	                                       straggling ops run ≥M× slower,
//	                                       Pareto(A)-tailed beyond
//	link:F-T,scale=S[,stall=DUR@AT]        transfers F→T take S× longer;
//	                                       the link freezes for DUR at AT
//	link:*,...                             every link
//	mem:D,frac=F@AT                        device D's effective memory
//	                                       drops to F×capacity at AT
//	fail:D@AT                              device D dies at virtual time AT
//
// ParseSpec never panics on any input (fuzzed); malformed specs return
// descriptive errors.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ErrBadSpec marks malformed fault-spec strings; every ParseSpec error
// wraps it.
var ErrBadSpec = errors.New("invalid fault spec")

// Straggler makes each operation straggle independently with
// probability P. Straggling operations run at least Mult× slower, with
// a Pareto(Tail) distributed factor beyond that (heavy-tailed: small
// Tail means wilder outliers).
type Straggler struct {
	P    float64
	Mult float64
	Tail float64
}

// LinkFault degrades one directional link (or, with Wildcard, all of
// them): Scale multiplies every transfer's service time, and a
// transfer whose link service would begin inside the window
// [StallAt, StallAt+StallDur) is additionally held until the window
// ends — a transient stall.
type LinkFault struct {
	From, To sim.DeviceID
	Wildcard bool
	Scale    float64
	StallAt  time.Duration
	StallDur time.Duration
}

// MemFault shrinks a device's effective memory capacity to Frac of its
// configured capacity from virtual time At onward.
type MemFault struct {
	Dev  sim.DeviceID
	Frac float64
	At   time.Duration
}

// DeviceFailure kills a device at virtual time At: any operation that
// would start on it — or still be running on it — at or after At
// aborts the run with sim.ErrDeviceFailed.
type DeviceFailure struct {
	Dev sim.DeviceID
	At  time.Duration
}

// Spec is a complete fault schedule.
type Spec struct {
	Seed      int64
	Straggler *Straggler
	Links     []LinkFault
	Mem       []MemFault
	Fail      []DeviceFailure
}

// ParseSpec parses the compact textual spec format documented in the
// package comment. The empty string is the empty (fault-free) spec. It
// never panics; malformed input returns an error wrapping ErrBadSpec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(clause, "seed="):
			spec.Seed, err = strconv.ParseInt(clause[len("seed="):], 10, 64)
			if err != nil {
				err = fmt.Errorf("seed: %v", err)
			}
		case strings.HasPrefix(clause, "straggler:"):
			err = spec.parseStraggler(clause[len("straggler:"):])
		case strings.HasPrefix(clause, "link:"):
			err = spec.parseLink(clause[len("link:"):])
		case strings.HasPrefix(clause, "mem:"):
			err = spec.parseMem(clause[len("mem:"):])
		case strings.HasPrefix(clause, "fail:"):
			err = spec.parseFail(clause[len("fail:"):])
		default:
			err = fmt.Errorf("unknown clause %q", clause)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return spec, nil
}

func (s *Spec) parseStraggler(body string) error {
	st := Straggler{P: 0.05, Mult: 4, Tail: 1.5}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("straggler: expected key=value, got %q", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("straggler %s: %v", k, err)
		}
		switch k {
		case "p":
			st.P = f
		case "mult":
			st.Mult = f
		case "tail":
			st.Tail = f
		default:
			return fmt.Errorf("straggler: unknown key %q", k)
		}
	}
	if st.P < 0 || st.P > 1 || math.IsNaN(st.P) {
		return fmt.Errorf("straggler: p=%v outside [0,1]", st.P)
	}
	if st.Mult < 1 || math.IsNaN(st.Mult) || math.IsInf(st.Mult, 0) {
		return fmt.Errorf("straggler: mult=%v must be >= 1", st.Mult)
	}
	if st.Tail <= 0 || math.IsNaN(st.Tail) || math.IsInf(st.Tail, 0) {
		return fmt.Errorf("straggler: tail=%v must be > 0", st.Tail)
	}
	s.Straggler = &st
	return nil
}

func (s *Spec) parseLink(body string) error {
	parts := strings.Split(body, ",")
	lf := LinkFault{Scale: 1}
	spec := strings.TrimSpace(parts[0])
	if spec == "*" {
		lf.Wildcard = true
	} else {
		fromS, toS, ok := strings.Cut(spec, "-")
		if !ok {
			return fmt.Errorf("link: expected FROM-TO or *, got %q", spec)
		}
		from, err1 := parseDev(fromS)
		to, err2 := parseDev(toS)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("link: bad endpoint in %q", spec)
		}
		lf.From, lf.To = from, to
	}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("link: expected key=value, got %q", kv)
		}
		switch k {
		case "scale":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("link scale: %v", err)
			}
			if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("link scale: %v must be > 0", f)
			}
			lf.Scale = f
		case "stall":
			durS, atS, ok := strings.Cut(v, "@")
			if !ok {
				return fmt.Errorf("link stall: expected DUR@AT, got %q", v)
			}
			dur, err1 := parseNonNegDuration(durS)
			at, err2 := parseNonNegDuration(atS)
			if err1 != nil {
				return fmt.Errorf("link stall: %v", err1)
			}
			if err2 != nil {
				return fmt.Errorf("link stall: %v", err2)
			}
			lf.StallDur, lf.StallAt = dur, at
		default:
			return fmt.Errorf("link: unknown key %q", k)
		}
	}
	s.Links = append(s.Links, lf)
	return nil
}

func (s *Spec) parseMem(body string) error {
	devS, rest, ok := strings.Cut(body, ",")
	if !ok {
		return fmt.Errorf("mem: expected DEV,frac=F@AT, got %q", body)
	}
	dev, err := parseDev(devS)
	if err != nil {
		return fmt.Errorf("mem: %v", err)
	}
	k, v, ok := strings.Cut(strings.TrimSpace(rest), "=")
	if !ok || k != "frac" {
		return fmt.Errorf("mem: expected frac=F@AT, got %q", rest)
	}
	fracS, atS, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("mem: expected frac=F@AT, got %q", rest)
	}
	frac, err := strconv.ParseFloat(fracS, 64)
	if err != nil {
		return fmt.Errorf("mem frac: %v", err)
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return fmt.Errorf("mem frac: %v outside [0,1]", frac)
	}
	at, err := parseNonNegDuration(atS)
	if err != nil {
		return fmt.Errorf("mem at: %v", err)
	}
	s.Mem = append(s.Mem, MemFault{Dev: dev, Frac: frac, At: at})
	return nil
}

func (s *Spec) parseFail(body string) error {
	devS, atS, ok := strings.Cut(body, "@")
	if !ok {
		return fmt.Errorf("fail: expected DEV@AT, got %q", body)
	}
	dev, err := parseDev(devS)
	if err != nil {
		return fmt.Errorf("fail: %v", err)
	}
	at, err := parseNonNegDuration(atS)
	if err != nil {
		return fmt.Errorf("fail at: %v", err)
	}
	s.Fail = append(s.Fail, DeviceFailure{Dev: dev, At: at})
	return nil
}

func parseDev(s string) (sim.DeviceID, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("device %q: %v", s, err)
	}
	if n < 0 || n > 1<<20 {
		return 0, fmt.Errorf("device %d out of range", n)
	}
	return sim.DeviceID(n), nil
}

func parseNonNegDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %v must be >= 0", d)
	}
	return d, nil
}

// Injector is the seeded realization of a Spec. It implements
// sim.Injector with pure, hash-derived per-call values: no method
// mutates the injector, so one instance may serve concurrent
// simulations and the multi-goroutine runtime executor alike.
type Injector struct {
	spec Spec
	// failAt is the earliest configured failure per device.
	failAt map[sim.DeviceID]time.Duration
}

var _ sim.Injector = (*Injector)(nil)

// New builds the injector for a spec.
func New(spec Spec) *Injector {
	in := &Injector{spec: spec, failAt: make(map[sim.DeviceID]time.Duration, len(spec.Fail))}
	for _, f := range spec.Fail {
		if at, ok := in.failAt[f.Dev]; !ok || f.At < at {
			in.failAt[f.Dev] = f.At
		}
	}
	return in
}

// splitmix64 is the SplitMix64 finalizer — a cheap, high-quality bit
// mixer used to derive independent per-entity randomness from
// (seed, entity) pairs without any shared stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// OpDuration implements sim.Injector: straggler sampling keyed by
// (seed, node) only, so every engine and every worker count sees the
// same multiplier for the same operation.
func (in *Injector) OpDuration(id graph.NodeID, _ sim.DeviceID, _, base time.Duration) time.Duration {
	st := in.spec.Straggler
	if st == nil || st.P <= 0 || base <= 0 {
		return base
	}
	h := splitmix64(uint64(in.spec.Seed) ^ splitmix64(uint64(id)+0x5741))
	if unit(h) >= st.P {
		return base
	}
	// Pareto(Tail) tail beyond the base multiplier, capped so a single
	// straggler cannot overflow the virtual clock.
	u := unit(splitmix64(h + 0x9E37))
	factor := st.Mult * math.Pow(1-u, -1/st.Tail)
	if factor > 1e4 {
		factor = 1e4
	}
	return time.Duration(float64(base) * factor)
}

// TransferDuration implements sim.Injector: matching link faults scale
// the service time, and a service start inside a stall window is held
// until the window ends.
func (in *Injector) TransferDuration(from, to sim.DeviceID, _ int64, start, base time.Duration) time.Duration {
	d := base
	for _, lf := range in.spec.Links {
		if !lf.Wildcard && (lf.From != from || lf.To != to) {
			continue
		}
		if lf.Scale > 0 && lf.Scale != 1 {
			d = time.Duration(float64(d) * lf.Scale)
		}
		if lf.StallDur > 0 && start >= lf.StallAt && start < lf.StallAt+lf.StallDur {
			d += lf.StallAt + lf.StallDur - start
		}
	}
	return d
}

// DeviceCapacity implements sim.Injector: the effective capacity is
// the configured capacity scaled by the smallest Frac of every mem
// fault already in effect at the given virtual time.
func (in *Injector) DeviceCapacity(dev sim.DeviceID, at time.Duration, base int64) int64 {
	c := base
	for _, mf := range in.spec.Mem {
		if mf.Dev != dev || at < mf.At {
			continue
		}
		if shrunk := int64(float64(base) * mf.Frac); shrunk < c {
			c = shrunk
		}
	}
	return c
}

// FailureTime implements sim.Injector.
func (in *Injector) FailureTime(dev sim.DeviceID) (time.Duration, bool) {
	at, ok := in.failAt[dev]
	return at, ok
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Schedule renders the configured fault schedule as a canonical
// multi-line string — the injector half of the byte-comparable event
// trace (the execution half is sim.Result.TraceString). Identical
// specs produce identical schedules.
func (in *Injector) Schedule() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", in.spec.Seed)
	if st := in.spec.Straggler; st != nil {
		fmt.Fprintf(&b, "straggler p=%.4f mult=%.2f tail=%.2f\n", st.P, st.Mult, st.Tail)
	}
	for _, lf := range in.spec.Links {
		link := "*"
		if !lf.Wildcard {
			link = fmt.Sprintf("%d->%d", lf.From, lf.To)
		}
		fmt.Fprintf(&b, "link %s scale=%.2f", link, lf.Scale)
		if lf.StallDur > 0 {
			fmt.Fprintf(&b, " stall=%v@%v", lf.StallDur, lf.StallAt)
		}
		b.WriteByte('\n')
	}
	for _, mf := range in.spec.Mem {
		fmt.Fprintf(&b, "mem dev%d frac=%.2f @%v\n", mf.Dev, mf.Frac, mf.At)
	}
	fails := make([]DeviceFailure, len(in.spec.Fail))
	copy(fails, in.spec.Fail)
	sort.Slice(fails, func(i, j int) bool {
		if fails[i].At != fails[j].At {
			return fails[i].At < fails[j].At
		}
		return fails[i].Dev < fails[j].Dev
	})
	for _, f := range fails {
		fmt.Fprintf(&b, "fail dev%d @%v\n", f.Dev, f.At)
	}
	return b.String()
}
