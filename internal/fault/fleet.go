package fault

import (
	"fmt"
	"strings"
	"time"
)

// This file extends the deterministic fault injector from the compute
// substrate (devices, links, memory) to the *service tier*: the pestod
// replicas a fleet router balances over. The same philosophy applies —
// a FleetSpec plus a clock position is a pure function of its inputs,
// so a chaos run is replayable from its spec alone, and concurrent
// callers (the router's prober, hedged requests, the chaos harness)
// can all consult one injector without synchronization.
//
// Specs share the compact ';'-separated clause form of ParseSpec:
//
//	rkill:ID@AT[,restart=DUR]     replica ID dies at elapsed time AT;
//	                              with restart, it returns DUR later
//	probehole:ID@AT,dur=DUR       health probes to ID black-hole during
//	                              [AT, AT+DUR) while traffic still flows
//	rlat:ID@AT,dur=DUR,add=EXTRA  requests to ID take EXTRA longer
//	                              during [AT, AT+DUR)
//
// Replica IDs are the router's backend IDs: any non-empty string free
// of the spec metacharacters (';', ',', '@', '=').

// ReplicaKill takes one replica down at elapsed time At. Restart == 0
// means it never returns; otherwise it is reachable again from
// At+Restart.
type ReplicaKill struct {
	Replica string
	At      time.Duration
	Restart time.Duration
}

// ProbeBlackhole drops health probes to a replica during [At, At+Dur)
// while leaving its traffic path intact — the probe/traffic divergence
// that makes failure *detection* itself a fault domain.
type ProbeBlackhole struct {
	Replica string
	At      time.Duration
	Dur     time.Duration
}

// LatencySpike adds Add to every request served by a replica during
// [At, At+Dur) — the slow-but-alive replica that hedging exists for.
type LatencySpike struct {
	Replica string
	At      time.Duration
	Dur     time.Duration
	Add     time.Duration
}

// FleetSpec is a complete service-tier fault schedule.
type FleetSpec struct {
	Kills      []ReplicaKill
	Blackholes []ProbeBlackhole
	Spikes     []LatencySpike
}

// ParseFleetSpec parses the compact textual form documented above. The
// empty string is the empty (fault-free) spec. It never panics;
// malformed input returns an error wrapping ErrBadSpec.
func ParseFleetSpec(s string) (FleetSpec, error) {
	var spec FleetSpec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(clause, "rkill:"):
			err = spec.parseKill(clause[len("rkill:"):])
		case strings.HasPrefix(clause, "probehole:"):
			err = spec.parseBlackhole(clause[len("probehole:"):])
		case strings.HasPrefix(clause, "rlat:"):
			err = spec.parseSpike(clause[len("rlat:"):])
		default:
			err = fmt.Errorf("unknown clause %q", clause)
		}
		if err != nil {
			return FleetSpec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return spec, nil
}

func (s *FleetSpec) parseKill(body string) error {
	head, rest, hasOpts := strings.Cut(body, ",")
	id, at, err := parseReplicaAt(head)
	if err != nil {
		return fmt.Errorf("rkill: %v", err)
	}
	k := ReplicaKill{Replica: id, At: at}
	if hasOpts {
		key, val, ok := strings.Cut(strings.TrimSpace(rest), "=")
		if !ok || key != "restart" {
			return fmt.Errorf("rkill: expected restart=DUR, got %q", rest)
		}
		d, err := parseNonNegDuration(val)
		if err != nil {
			return fmt.Errorf("rkill restart: %v", err)
		}
		if d == 0 {
			return fmt.Errorf("rkill restart: duration must be > 0")
		}
		k.Restart = d
	}
	s.Kills = append(s.Kills, k)
	return nil
}

func (s *FleetSpec) parseBlackhole(body string) error {
	head, rest, ok := strings.Cut(body, ",")
	if !ok {
		return fmt.Errorf("probehole: expected ID@AT,dur=DUR, got %q", body)
	}
	id, at, err := parseReplicaAt(head)
	if err != nil {
		return fmt.Errorf("probehole: %v", err)
	}
	key, val, ok2 := strings.Cut(strings.TrimSpace(rest), "=")
	if !ok2 || key != "dur" {
		return fmt.Errorf("probehole: expected dur=DUR, got %q", rest)
	}
	d, err := parseNonNegDuration(val)
	if err != nil {
		return fmt.Errorf("probehole dur: %v", err)
	}
	s.Blackholes = append(s.Blackholes, ProbeBlackhole{Replica: id, At: at, Dur: d})
	return nil
}

func (s *FleetSpec) parseSpike(body string) error {
	parts := strings.Split(body, ",")
	if len(parts) != 3 {
		return fmt.Errorf("rlat: expected ID@AT,dur=DUR,add=EXTRA, got %q", body)
	}
	id, at, err := parseReplicaAt(parts[0])
	if err != nil {
		return fmt.Errorf("rlat: %v", err)
	}
	sp := LatencySpike{Replica: id, At: at}
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return fmt.Errorf("rlat: expected key=value, got %q", kv)
		}
		d, err := parseNonNegDuration(val)
		if err != nil {
			return fmt.Errorf("rlat %s: %v", key, err)
		}
		switch key {
		case "dur":
			sp.Dur = d
		case "add":
			sp.Add = d
		default:
			return fmt.Errorf("rlat: unknown key %q", key)
		}
	}
	if sp.Add == 0 {
		return fmt.Errorf("rlat: add must be > 0")
	}
	s.Spikes = append(s.Spikes, sp)
	return nil
}

// parseReplicaAt splits the "ID@AT" head shared by every clause.
func parseReplicaAt(head string) (string, time.Duration, error) {
	id, atS, ok := strings.Cut(strings.TrimSpace(head), "@")
	if !ok {
		return "", 0, fmt.Errorf("expected ID@AT, got %q", head)
	}
	if id == "" || strings.ContainsAny(id, ";,@=") {
		return "", 0, fmt.Errorf("bad replica id %q", id)
	}
	at, err := parseNonNegDuration(atS)
	if err != nil {
		return "", 0, fmt.Errorf("at: %v", err)
	}
	return id, at, nil
}

// FleetInjector is the realization of a FleetSpec. Every method is a
// pure function of (spec, replica, elapsed) — no internal state, no
// shared random stream — so one instance serves the router's prober,
// live traffic and hedges concurrently, and a chaos run replays
// byte-identically from its spec.
type FleetInjector struct {
	spec FleetSpec
}

// NewFleet builds the injector for a spec.
func NewFleet(spec FleetSpec) *FleetInjector { return &FleetInjector{spec: spec} }

// Killed reports whether the replica is down at elapsed time t.
func (in *FleetInjector) Killed(replica string, t time.Duration) bool {
	for _, k := range in.spec.Kills {
		if k.Replica != replica || t < k.At {
			continue
		}
		if k.Restart == 0 || t < k.At+k.Restart {
			return true
		}
	}
	return false
}

// Blackholed reports whether health probes to the replica vanish at
// elapsed time t.
func (in *FleetInjector) Blackholed(replica string, t time.Duration) bool {
	for _, b := range in.spec.Blackholes {
		if b.Replica == replica && t >= b.At && t < b.At+b.Dur {
			return true
		}
	}
	return false
}

// ExtraLatency is the added service time for a request hitting the
// replica at elapsed time t (overlapping spikes stack).
func (in *FleetInjector) ExtraLatency(replica string, t time.Duration) time.Duration {
	var extra time.Duration
	for _, sp := range in.spec.Spikes {
		if sp.Replica == replica && t >= sp.At && t < sp.At+sp.Dur {
			extra += sp.Add
		}
	}
	return extra
}
