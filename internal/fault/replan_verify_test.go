package fault_test

// End-to-end recovery oracle: inject a whole-device failure into a
// verified run, observe the DeviceFailedError, replan onto the
// survivors, and hold the recovered plan to the full independent
// verification — the fault → detect → replan → verify loop the
// degradation ladder exists for, on generated graphs.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/fault"
	"pesto/internal/gen"
	"pesto/internal/placement"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

func TestInjectedFailureReplanVerifies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, 16<<30)
		plan, err := baselines.HEFT(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		healthy, err := verify.Check(g, sys, plan)
		if err != nil {
			t.Fatalf("seed %d: healthy plan rejected: %v", seed, err)
		}

		// Kill device 1 (the first GPU) mid-step.
		spec, err := fault.ParseSpec(fmt.Sprintf("seed=%d;fail:1@%s", seed, healthy.Makespan/2))
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.RunInjected(g, sys, plan, fault.New(spec))
		if err == nil {
			t.Fatalf("seed %d: step survived a device failure", seed)
		}
		var dfe *sim.DeviceFailedError
		if !errors.As(err, &dfe) || !errors.Is(err, sim.ErrDeviceFailed) {
			t.Fatalf("seed %d: failure surfaced as %v, want *DeviceFailedError", seed, err)
		}
		if dfe.Device != 1 {
			t.Fatalf("seed %d: failed device %d, want 1", seed, dfe.Device)
		}

		// Recover and verify the recovered plan on the survivors.
		out, err := placement.Replan(context.Background(), g, sys, plan, dfe.Device, placement.Options{
			ILPTimeLimit: 2 * time.Second,
			Verify:       true,
		})
		if err != nil {
			t.Fatalf("seed %d: replan: %v", seed, err)
		}
		for id, d := range out.Plan.Device {
			if d == dfe.Device {
				t.Fatalf("seed %d: op %d still on failed device", seed, id)
			}
		}
		recovered, err := verify.Check(g, out.Survivors, out.Plan)
		if err != nil {
			t.Fatalf("seed %d: recovered plan rejected: %v", seed, err)
		}
		if recovered.Makespan <= 0 {
			t.Fatalf("seed %d: zero recovered makespan", seed)
		}
		if perr := out.Provenance.Err(); perr == nil || !errors.Is(perr, placement.ErrDegraded) {
			t.Fatalf("seed %d: replan provenance %v, want wrap of ErrDegraded", seed, perr)
		}
	}
}
