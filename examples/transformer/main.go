// Transformer: the hard case. §5.3 of the paper explains that
// Transformer's long residual chains leave little room for model
// parallelism, so Pesto's wins are moderate (~8%) — most of the step is
// a serial critical path. This example quantifies that structure:
// critical-path ratio, strategy comparison, and what happens when the
// interconnect slows down (Figure 8b's mechanism).
//
//	go run ./examples/transformer
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pesto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := pesto.BuildModel("Transformer-small")
	if err != nil {
		return err
	}
	cp, _, err := g.CriticalPath()
	if err != nil {
		return err
	}
	total := g.TotalCost()
	fmt.Printf("transformer: %d ops, critical path %v of %v total compute (%.0f%%)\n",
		g.NumNodes(), cp, total, 100*float64(cp)/float64(total))
	fmt.Println("a critical-path share this high caps any 2-GPU speedup — the")
	fmt.Println("paper sees the same and reports only ~8% gains on Transformer.")

	sys := pesto.NewSystem(2, 16<<30)
	res, err := pesto.Place(context.Background(), g, sys, pesto.PlaceOptions{
		ILPTimeLimit:    3 * time.Second,
		ScheduleFromILP: true,
	})
	if err != nil {
		return err
	}
	pestoStep, err := pesto.Simulate(g, sys, res.Plan)
	if err != nil {
		return err
	}
	expert, err := pesto.ExpertPlan(g, sys, false)
	if err != nil {
		return err
	}
	expStep, err := pesto.Simulate(g, sys, expert)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-step: expert %v, pesto %v (%.1f%% reduction)\n",
		expStep.Makespan, pestoStep.Makespan,
		100*(1-float64(pestoStep.Makespan)/float64(expStep.Makespan)))

	// Figure 8b's mechanism: Expert is oblivious to the interconnect;
	// Pesto re-places when links get slower and keeps the gap.
	fmt.Println("\ninterconnect sweep (0.25x is PCIe-class, 1x is NVLink):")
	for _, f := range []float64{0.25, 0.5, 1.0} {
		slow := sys.WithCommSpeed(f)
		er, err := pesto.Simulate(g, slow, expert)
		if err != nil {
			return err
		}
		pr, err := pesto.Place(context.Background(), g, slow, pesto.PlaceOptions{
			ILPTimeLimit: 2 * time.Second, ScheduleFromILP: true,
		})
		if err != nil {
			return err
		}
		ps, err := pesto.Simulate(g, slow, pr.Plan)
		if err != nil {
			return err
		}
		fmt.Printf("  %4.2fx: expert %-12v pesto %-12v (%+.1f%%)\n",
			f, er.Makespan, ps.Makespan, 100*(1-float64(ps.Makespan)/float64(er.Makespan)))
	}
	return nil
}
