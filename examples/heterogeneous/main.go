// Heterogeneous hardware: the §3.2.2 extensions in action. Part 1
// places a model on a machine whose second GPU is twice as fast — the
// ILP's placement-dependent durations shift work onto the fast device.
// Part 2 scales out to a two-host, four-GPU topology where intra-host
// NVLink coexists with an inter-host network, and the multi-GPU
// extension places across all four devices.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pesto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := pesto.BuildModel("RNNLM-small")
	if err != nil {
		return err
	}

	// --- Part 1: one fast GPU, one slow GPU.
	het := pesto.NewSystem(2, 16<<30)
	het.Devices[2].Speed = 2 // gpu:1 is twice as fast
	res, err := pesto.Place(context.Background(), g, het, pesto.PlaceOptions{
		ILPTimeLimit: 3 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		return err
	}
	step, err := pesto.Simulate(g, het, res.Plan)
	if err != nil {
		return err
	}
	var slow, fast time.Duration
	for _, nd := range g.Nodes() {
		if nd.Kind != pesto.KindGPU {
			continue
		}
		if res.Plan.Device[nd.ID] == 2 {
			fast += nd.Cost
		} else {
			slow += nd.Cost
		}
	}
	fmt.Printf("heterogeneous 2-GPU (gpu:1 is 2x faster):\n")
	fmt.Printf("  per-step time %v\n", step.Makespan)
	fmt.Printf("  compute routed to fast GPU: %.0f%% (>50%% confirms speed-aware routing; dependencies cap the ideal 67%%)\n",
		100*float64(fast)/float64(fast+slow))

	// --- Part 2: two hosts, two GPUs each, network between hosts.
	multi := pesto.NewMultiHostSystem(2, 2, 16<<30)
	const mb = 1 << 20
	fmt.Printf("\nmulti-host topology (2 hosts x 2 GPUs):\n")
	fmt.Printf("  NVLink  gpu:0→gpu:1 64MiB: %v\n", multi.TransferTime(1, 2, 64*mb))
	fmt.Printf("  network gpu:0→gpu:2 64MiB: %v (different hosts)\n", multi.TransferTime(1, 3, 64*mb))

	mres, err := pesto.PlaceMultiGPU(context.Background(), g, multi, pesto.PlaceOptions{
		ILPTimeLimit: 4 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		return err
	}
	mstep, err := pesto.Simulate(g, multi, mres.Plan)
	if err != nil {
		return err
	}
	perHost := map[int]int{}
	for _, nd := range g.Nodes() {
		if nd.Kind == pesto.KindGPU {
			perHost[(int(mres.Plan.Device[nd.ID])-1)/2]++
		}
	}
	fmt.Printf("  4-GPU per-step time %v; ops per host: %v\n", mstep.Makespan, perHost)
	fmt.Println("  (the placer keeps chatty subgraphs within a host and only")
	fmt.Println("   crosses the network where the traffic is light)")
	return nil
}
