// NASNet out-of-memory: the Figure 7 OOM story. The Expert recipe for
// NASNet splits the parallel branches of each cell across GPUs but
// leaves the stems, concats and classifier on the first GPU — an
// unbalanced footprint that exceeds 16 GiB on the large variants. Pesto
// balances memory explicitly (constraint group (8)) and fits.
//
//	go run ./examples/nasnet
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"pesto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A NASNet calibrated to the paper's OOM regime: the total fits on
	// two GPUs only if split nearly evenly. (NASNet-4-212 is the
	// paper-scale equivalent.)
	g, err := pesto.BuildModel("NASNet-small")
	if err != nil {
		return err
	}
	// Shrink the GPUs so the small model reproduces the same tension.
	total := g.TotalMemory()
	sys := pesto.NewSystem(2, total*55/100)
	fmt.Printf("model footprint %.2f GiB, per-GPU capacity %.2f GiB\n",
		float64(total)/(1<<30), float64(total*55/100)/(1<<30))

	expert, err := pesto.ExpertPlan(g, sys, true)
	if err != nil {
		return err
	}
	if _, err := pesto.Simulate(g, sys, expert); errors.Is(err, pesto.ErrOOM) {
		fmt.Println("expert placement:  OOM —", err)
	} else if err != nil {
		return err
	} else {
		fmt.Println("expert placement unexpectedly fit; try a larger variant")
	}

	res, err := pesto.Place(context.Background(), g, sys, pesto.PlaceOptions{
		ILPTimeLimit:    3 * time.Second,
		ScheduleFromILP: true,
	})
	if err != nil {
		return err
	}
	step, err := pesto.Simulate(g, sys, res.Plan)
	if err != nil {
		return err
	}
	use := res.Plan.MemoryUsage(g, sys)
	fmt.Printf("pesto placement:   fits — per-step time %v\n", step.Makespan)
	fmt.Printf("  gpu0 %.2f GiB, gpu1 %.2f GiB (balanced within the ILP's slack)\n",
		float64(use[1])/(1<<30), float64(use[2])/(1<<30))
	return nil
}
