// Congestion: the Figure 5 story. Pesto's ILP models every one-way
// inter-GPU link as a FCFS queue; disabling the congestion constraints
// (7) lets the planner bunch transfers that then serialize at runtime.
// This example places an RNNLM with and without the constraints and
// prints the realized transfer timelines side by side.
//
//	go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pesto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := pesto.BuildModel("RNNLM-small")
	if err != nil {
		return err
	}
	sys := pesto.NewSystem(2, 16<<30)

	type outcome struct {
		name string
		opts pesto.PlaceOptions
	}
	runs := []outcome{
		{"with congestion constraints", pesto.PlaceOptions{ILPTimeLimit: 3 * time.Second, ScheduleFromILP: true}},
		{"without congestion constraints", pesto.PlaceOptions{ILPTimeLimit: 3 * time.Second, ScheduleFromILP: true, DisableCongestion: true}},
	}
	for _, rn := range runs {
		res, err := pesto.Place(context.Background(), g, sys, rn.opts)
		if err != nil {
			return err
		}
		step, err := pesto.Simulate(g, sys, res.Plan)
		if err != nil {
			return err
		}
		var queued time.Duration
		congested := 0
		for _, tr := range step.Transfers {
			queued += tr.Queued()
			if tr.Queued() > 0 {
				congested++
			}
		}
		fmt.Printf("%s:\n", rn.name)
		fmt.Printf("  per-step time      %v\n", step.Makespan)
		fmt.Printf("  transfers          %d (%d queued behind another)\n", len(step.Transfers), congested)
		fmt.Printf("  total queueing     %v (max %v)\n", queued, step.MaxQueueing())
		// A small Gantt of the busiest link: GPU0→GPU1.
		fmt.Println("  first transfers on gpu0→gpu1:")
		shown := 0
		for _, tr := range step.Transfers {
			if tr.From != 1 || tr.To != 2 || shown >= 5 {
				continue
			}
			bar := time.Duration(0)
			if tr.Queued() > 0 {
				bar = tr.Queued()
			}
			fmt.Printf("    enq %-10v start %-10v done %-10v wait %v\n",
				tr.Enqueue, tr.Start, tr.Finish, bar)
			shown++
		}
	}
	fmt.Println("\nThe paper's Figure 5 shows the same mechanism at full scale:")
	fmt.Println("without constraint group (7), transfers bunch on one link and")
	fmt.Println("the RNNLM step inflates ~3x.")
	return nil
}
