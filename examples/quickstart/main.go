// Quickstart: build a model, profile it, place it with Pesto, and
// simulate one training step — the end-to-end pipeline of the paper in
// ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pesto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An RNNLM language model (scaled down so this demo runs in
	// seconds; use "RNNLM-2-2048" for the paper-scale variant).
	g, err := pesto.BuildModel("RNNLM-small")
	if err != nil {
		return err
	}
	fmt.Printf("model: %d operations, %d tensor edges, %.1f GiB\n",
		g.NumNodes(), g.NumEdges(), float64(g.TotalMemory())/(1<<30))

	// The paper's testbed: one CPU, two 16 GiB GPUs, NVLink + PCIe.
	sys := pesto.NewSystem(2, 16<<30)

	// §3.1: estimate per-operation compute times from a few training
	// iterations (the paper runs 100; their variability is tiny).
	cdf, err := pesto.ProfileCompute(g, 25, 42)
	if err != nil {
		return err
	}
	fmt.Printf("profiled %d ops; median normalized stddev %.3f\n", len(cdf), cdf[len(cdf)/2])

	// §3.2–3.3: coarsen, solve the placement+scheduling ILP, refine.
	res, err := pesto.Place(context.Background(), g, sys, pesto.PlaceOptions{
		ILPTimeLimit:    3 * time.Second,
		ScheduleFromILP: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pesto placed in %v (coarse graph: %d vertices, ILP: %v)\n",
		res.PlacementTime.Round(time.Millisecond), res.CoarseSize, res.ILPStatus)

	// Simulate one training step and compare against the single-GPU
	// default and the manual Expert recipe.
	step, err := pesto.Simulate(g, sys, res.Plan)
	if err != nil {
		return err
	}
	fmt.Printf("pesto per-step time: %v (gpu0 %.0f%%, gpu1 %.0f%% busy)\n",
		step.Makespan, 100*step.Utilization(1), 100*step.Utilization(2))

	for _, alt := range []struct {
		name string
		plan func() (pesto.Plan, error)
	}{
		{"single GPU", func() (pesto.Plan, error) { return pesto.SingleGPUPlan(g, sys) }},
		{"expert", func() (pesto.Plan, error) { return pesto.ExpertPlan(g, sys, false) }},
	} {
		plan, err := alt.plan()
		if err != nil {
			return err
		}
		r, err := pesto.Simulate(g, sys, plan)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s per-step time: %v (pesto is %.1f%% faster)\n",
			alt.name, r.Makespan, 100*(1-float64(step.Makespan)/float64(r.Makespan)))
	}
	return nil
}
