package pesto

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFacadeErrorWrappingAudit proves the error chains the facade
// documents actually unwrap with errors.Is from outside the internal
// packages: ladder degradation, caller cancellation, deadline expiry,
// and verification rejections.
func TestFacadeErrorWrappingAudit(t *testing.T) {
	g, err := BuildModel("RNNLM-small")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)

	t.Run("degraded-provenance-wraps-ErrDegraded", func(t *testing.T) {
		// Fail every rung above the baseline fallback from outside so
		// it serves the plan.
		opts := PlaceOptions{
			ILPTimeLimit: 2 * time.Second,
			StageRetries: -1,
			StageHook: func(s Stage) error {
				if s == StageILP || s == StageRefine || s == StagePipelineDP {
					return errors.New("injected rung failure")
				}
				return nil
			},
		}
		res, err := Place(context.Background(), g, sys, opts)
		if err != nil {
			t.Fatalf("Place with forced fallback: %v", err)
		}
		if res.Provenance.Stage != StageFallback {
			t.Fatalf("served by %v, want %v", res.Provenance.Stage, StageFallback)
		}
		perr := res.Provenance.Err()
		if perr == nil || !errors.Is(perr, ErrDegraded) {
			t.Fatalf("Provenance.Err() = %v, want wrap of ErrDegraded", perr)
		}
	})

	t.Run("undegraded-provenance-has-nil-err", func(t *testing.T) {
		res, err := Place(context.Background(), g, sys, PlaceOptions{ILPTimeLimit: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if perr := res.Provenance.Err(); perr != nil && errors.Is(perr, ErrDegraded) {
			t.Fatalf("primary-rung plan reports degradation: %v", perr)
		}
	})

	t.Run("cancellation-wraps-context-Canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Place(ctx, g, sys, PlaceOptions{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("Place on cancelled ctx: %v, want wrap of context.Canceled", err)
		}
		if _, err := Replan(ctx, g, sys, Plan{}, 1, PlaceOptions{}); err == nil {
			t.Fatal("Replan on cancelled ctx succeeded")
		}
	})

	t.Run("deadline-wraps-DeadlineExceeded", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := Place(ctx, g, sys, PlaceOptions{}); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Place past deadline: %v, want wrap of context.DeadlineExceeded", err)
		}
	})

	t.Run("verification-rejections-wrap-ErrInvariant", func(t *testing.T) {
		// A GPU op forced onto the CPU is the canonical infeasible plan.
		bad := Plan{Device: make([]DeviceID, g.NumNodes())}
		if _, err := VerifyPlan(g, sys, bad); !errors.Is(err, ErrInvariant) {
			t.Fatalf("VerifyPlan on infeasible plan: %v, want wrap of ErrInvariant", err)
		}
	})

	t.Run("place-with-verify-option", func(t *testing.T) {
		res, err := Place(context.Background(), g, sys, PlaceOptions{ILPTimeLimit: 2 * time.Second, Verify: true, ScheduleFromILP: true})
		if err != nil {
			t.Fatalf("Place with Verify: %v", err)
		}
		// And the returned plan passes the same checker standalone.
		if _, err := VerifyPlan(g, sys, res.Plan); err != nil {
			t.Fatalf("verified plan fails standalone VerifyPlan: %v", err)
		}
	})

	t.Run("oom-wraps-ErrOOM", func(t *testing.T) {
		tiny := NewSystem(2, 1<<10)
		plan, err := SingleGPUPlan(g, tiny)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Simulate(g, tiny, plan); !errors.Is(err, ErrOOM) {
			t.Fatalf("Simulate on tiny memory: %v, want wrap of ErrOOM", err)
		}
	})
}

// TestFacadeGeneratorAndBound exercises the generator and LP bound
// through the facade on a small seed range.
func TestFacadeGeneratorAndBound(t *testing.T) {
	sys := NewSystem(2, 16<<30)
	for seed := int64(0); seed < 8; seed++ {
		g, err := GenerateGraph(RandomGraphConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		lb, err := MakespanLowerBound(g, sys)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := HEFTPlan(g, sys)
		if err != nil {
			t.Fatal(err)
		}
		step, err := VerifyPlan(g, sys, plan)
		if err != nil {
			t.Fatal(err)
		}
		if step.Makespan < lb {
			t.Fatalf("seed %d: makespan %v undercuts bound %v", seed, step.Makespan, lb)
		}
	}
}
