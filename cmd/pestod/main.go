// Command pestod serves Pesto placement over HTTP: POST a computation
// graph and receive a verified, deterministic placement plan. Repeat
// requests are answered from a content-addressed plan cache; admission
// control bounds solver load; /metrics exposes Prometheus text.
//
// Usage:
//
//	pestod [-addr :8080] [-solvers 2] [-queue 8] [-cache 256]
//	       [-budget 10s] [-max-budget 60s] [-parallel N]
//	       [-warm-dir graphs/] [-drain-timeout 30s]
//	       [-obs-log telemetry.jsonl] [-span-history 64]
//	       [-flight-dir bundles/]
//	       [-fleet N | -fleet-backends url1,url2,…]
//
// Endpoints:
//
//	POST /v1/place   solve (or replay) a placement; body {"graph":…,"options":…}
//	POST /v1/place/delta   incremental re-place of an edited graph; body
//	                 {"baseFingerprint":…,"edits":[…],"options":…} — the base
//	                 must have been placed here before (404 otherwise)
//	POST /v1/trace   same body as /v1/place; returns a Chrome Trace Event timeline
//	GET  /v1/requests/{id}/spans   span dump of a recent request by X-Request-ID
//	GET  /debug/flight   the flight recorder's always-on telemetry ring
//	GET  /healthz    liveness + queue/cache gauges
//	GET  /metrics    Prometheus text exposition
//	GET  /debug/pprof/   Go runtime profiles (heap, CPU, goroutines, …)
//
// The flight recorder is always on: the last few thousand telemetry
// records ride in a bounded ring, and a solve slower than its rolling
// p99, a collapse to the fallback rung, a verification failure or a
// fast-burning SLO captures a self-contained repro bundle under
// -flight-dir that `pesto -replay-bundle` re-executes.
//
// Fleet mode puts the fingerprint-routed replica fleet in front of the
// service: `-fleet N` runs N in-process replicas (each with its own
// solver pool and plan cache) behind a consistent-hash router with
// health probing, circuit breakers, retry/hedging, failover and
// warm-sync; `-fleet-backends` routes to external pestod processes
// over HTTP instead. The router serves /v1/place, /v1/trace,
// /v1/place/batch, /healthz, /metrics — and GET
// /v1/requests/{id}/trace, which stitches a traced request's
// per-replica span dumps into one cross-fleet Chrome trace.
//
// Every request carries an X-Request-ID (client-supplied or generated)
// echoed on the response, stamped into each -obs-log line and keying
// the retained span dump.
//
// SIGINT/SIGTERM drain gracefully: new solve requests get 503, in-flight
// solves finish (up to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pesto/internal/fleet"
	"pesto/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pestod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pestod", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		solvers  = fs.Int("solvers", 2, "max concurrent solves")
		queue    = fs.Int("queue", 8, "max requests waiting for a solver slot (-1 = none)")
		cache    = fs.Int("cache", 256, "plan cache entries")
		budget   = fs.Duration("budget", 10*time.Second, "default solve budget")
		maxBud   = fs.Duration("max-budget", 60*time.Second, "maximum solve budget a request may ask for")
		parallel = fs.Int("parallel", 0, "per-solve worker count (0 = GOMAXPROCS)")
		warmDir  = fs.String("warm-dir", "", "directory of graph JSON files to pre-solve at startup")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight solves on shutdown")
		obsLog   = fs.String("obs-log", "", `stream per-request telemetry as JSON lines to this file ("-" = stderr)`)
		spanHist = fs.Int("span-history", 0, "recent requests to retain span dumps for (0 = default 64)")
		fleetN   = fs.Int("fleet", 0, "run N in-process replicas behind the fingerprint router (0 = single server)")
		fleetBk  = fs.String("fleet-backends", "", "comma-separated base URLs of external pestod replicas to route to")
		flightD  = fs.String("flight-dir", "", "directory for flight-recorder repro bundles (empty = in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if *obsLog != "" {
		lw := io.Writer(os.Stderr)
		if *obsLog != "-" {
			lf, err := os.Create(*obsLog)
			if err != nil {
				return err
			}
			defer lf.Close()
			lw = lf
		}
		logger = slog.New(slog.NewJSONHandler(lw, nil))
	}

	newServer := func() (*service.Server, error) {
		srv := service.New(service.Config{
			MaxConcurrentSolves: *solvers,
			QueueDepth:          *queue,
			CacheEntries:        *cache,
			DefaultBudget:       *budget,
			MaxBudget:           *maxBud,
			Parallel:            *parallel,
			Logger:              logger,
			SpanHistory:         *spanHist,
			FlightDir:           *flightD,
		})
		if *warmDir != "" {
			start := time.Now()
			n, err := srv.WarmFromDir(context.Background(), *warmDir)
			if err != nil {
				return nil, fmt.Errorf("warm-up from %s: %w", *warmDir, err)
			}
			log.Printf("warmed %d plans from %s in %v", n, *warmDir, time.Since(start).Round(time.Millisecond))
		}
		return srv, nil
	}

	// Pick the serving topology: a single service, an in-process
	// replica fleet behind the fingerprint router, or a router over
	// external pestod processes.
	var (
		handler http.Handler
		drain   func(context.Context) error
		mode    string
	)
	proberCtx, stopProber := context.WithCancel(context.Background())
	defer stopProber()
	switch {
	case *fleetBk != "":
		if *fleetN != 0 {
			return errors.New("-fleet and -fleet-backends are mutually exclusive")
		}
		var backends []fleet.Backend
		for _, u := range strings.Split(*fleetBk, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			// The URL is the replica's ring identity: every router
			// fronting the same backend list computes the same
			// ownership, so caches shard consistently across routers.
			backends = append(backends, fleet.NewHTTPBackend(u, u, nil))
		}
		if len(backends) == 0 {
			return errors.New("-fleet-backends: no backend URLs")
		}
		rt, err := fleet.New(fleet.Config{}, backends...)
		if err != nil {
			return err
		}
		rt.Start(proberCtx)
		handler = rt
		drain = func(context.Context) error { return nil } // external replicas drain themselves
		mode = fmt.Sprintf("fleet router over %d HTTP backends", len(backends))
	case *fleetN > 0:
		servers := make([]*service.Server, *fleetN)
		backends := make([]fleet.Backend, *fleetN)
		for i := range servers {
			srv, err := newServer()
			if err != nil {
				return err
			}
			servers[i] = srv
			backends[i] = fleet.NewHandlerBackend(fmt.Sprintf("r%d", i), srv)
		}
		rt, err := fleet.New(fleet.Config{}, backends...)
		if err != nil {
			return err
		}
		rt.Start(proberCtx)
		handler = rt
		drain = func(ctx context.Context) error {
			var errs []error
			for _, s := range servers {
				errs = append(errs, s.Drain(ctx))
			}
			return errors.Join(errs...)
		}
		mode = fmt.Sprintf("fleet of %d in-process replicas", *fleetN)
	default:
		srv, err := newServer()
		if err != nil {
			return err
		}
		handler = srv
		drain = srv.Drain
		mode = "single server"
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The service handler plus the runtime's profiling endpoints.
	// Registering pprof explicitly (not via the package's init side
	// effect on http.DefaultServeMux) keeps the route set visible here.
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("pestod listening on %s (%s, solvers=%d queue=%d cache=%d budget=%v)",
		ln.Addr(), mode, *solvers, *queue, *cache, *budget)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, draining (timeout %v)", s, *drainTO)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Drain first: new solve requests 503 while in-flight solves finish,
	// then stop accepting connections at all.
	stopProber()
	drainErr := drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		log.Printf("drain incomplete: %v (in-flight solves were cancelled)", drainErr)
	} else {
		log.Printf("drained cleanly")
	}
	return nil
}
