// Command pesto places and schedules one of the paper's DNN model
// variants on a simulated CPU + 2-GPU machine and reports the per-step
// training time under the chosen strategy.
//
// Usage:
//
//	pesto -model RNNLM-2-2048 [-strategy pesto|expert|baechi|single]
//	      [-ilp-time 10s] [-ilp-max-nodes N] [-parallel N]
//	      [-coarsen 192] [-gpus 2] [-gpu-mem-gb 16]
//	      [-fault-spec "seed=42;straggler:p=0.1;fail:2@5ms"] [-replan N]
//	      [-timeline N] [-dot out.dot]
//	      [-obs-trace out.json] [-obs-log telemetry.jsonl]
//	pesto -replay-bundle bundle-000000-slow-solve.json
//
// -replay-bundle re-executes a repro bundle captured by pestod's
// flight recorder and verifies the solve reproduces the originally
// served response byte-for-byte; a mismatch exits non-zero.
//
// -obs-trace writes one Chrome Trace Event file combining the solver's
// span tree (ladder rungs, coarsening, branch and bound, refinement,
// the incumbent/bound convergence tracks) with the simulated execution
// timeline; open it in chrome://tracing or https://ui.perfetto.dev.
// -obs-log streams the same telemetry as JSON lines ("-" = stderr).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pesto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pesto:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pesto", flag.ContinueOnError)
	var (
		model    = fs.String("model", "RNNLM-2-2048", "model variant (see -list)")
		list     = fs.Bool("list", false, "list model variants and exit")
		strategy = fs.String("strategy", "pesto", "pesto | expert | baechi | single | heft")
		ilpTime  = fs.Duration("ilp-time", 10*time.Second, "Pesto ILP+refinement time budget")
		ilpNodes = fs.Int("ilp-max-nodes", 0, "branch-and-bound node budget (0 = solver default); a machine-independent truncation, unlike -ilp-time")
		parallel = fs.Int("parallel", 0, "placement worker count (0 = GOMAXPROCS); identical plans at any value unless -ilp-time binds")
		coarsen  = fs.Int("coarsen", 0, "coarsening target (0 = default)")
		gpus     = fs.Int("gpus", 2, "number of GPUs")
		gpuMemGB = fs.Int64("gpu-mem-gb", 16, "GPU memory in GiB")
		faultStr = fs.String("fault-spec", "", `fault schedule for the simulated step, e.g. "seed=42;straggler:p=0.1,mult=8;link:0-1,scale=4;mem:2,frac=0.5@2ms;fail:2@5ms"`)
		replan   = fs.Int("replan", -1, "fail this device after placement and replan onto the survivors")
		timeline = fs.Int("timeline", 0, "print the first N inter-GPU transfers")
		gantt    = fs.Bool("gantt", false, "print a text Gantt chart of the step")
		planOut  = fs.String("plan-out", "", "write the chosen plan as JSON to this file")
		chromeTr = fs.String("chrome-trace", "", "write a Chrome Trace Event file for chrome://tracing")
		obsTrace = fs.String("obs-trace", "", "write a combined solver+execution Chrome Trace Event file")
		obsLog   = fs.String("obs-log", "", `stream solver telemetry as JSON lines to this file ("-" = stderr)`)
		dotPath  = fs.String("dot", "", "write the model graph in DOT format to this file")
		devSpeed = fs.String("device-speeds", "", `per-GPU compute speed multipliers, e.g. "1.0,2.0" (missing entries stay 1.0)`)
		pipeSpec = fs.String("pipeline", "", `microbatched pipeline planning spec, e.g. "mb=8,sched=1f1b" (pesto strategy only)`)
		replayB  = fs.String("replay-bundle", "", "re-execute a pestod flight-recorder repro bundle and verify byte identity")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, v := range pesto.ModelVariants() {
			fmt.Printf("%-24s family=%s\n", v.Name, v.Family)
		}
		return nil
	}
	if *replayB != "" {
		return replayBundle(*replayB, *parallel)
	}

	g, err := pesto.BuildModel(*model)
	if err != nil {
		return err
	}
	sys := pesto.NewSystem(*gpus, *gpuMemGB<<30)
	if *devSpeed != "" {
		speeds, err := parseSpeeds(*devSpeed)
		if err != nil {
			return fmt.Errorf("-device-speeds: %w", err)
		}
		sys = sys.WithGPUSpeeds(speeds)
	}
	popts, err := pesto.ParsePipelineSpec(*pipeSpec)
	if err != nil {
		return fmt.Errorf("-pipeline: %w", err)
	}
	if popts.Enabled() && *strategy != "pesto" {
		return fmt.Errorf("-pipeline requires -strategy pesto, got %q", *strategy)
	}

	// Solver telemetry: a context-carried recorder feeding an in-memory
	// sink (for -obs-trace) and/or a JSONL stream (-obs-log). Without
	// either flag the context stays bare and the pipeline records
	// nothing.
	ctx := context.Background()
	var rec *pesto.ObsRecorder
	var obsSink *pesto.ObsMemorySink
	if *obsTrace != "" || *obsLog != "" {
		var sinks []pesto.ObsSink
		if *obsTrace != "" {
			obsSink = pesto.NewObsMemorySink()
			sinks = append(sinks, obsSink)
		}
		if *obsLog != "" {
			lw := io.Writer(os.Stderr)
			if *obsLog != "-" {
				lf, err := os.Create(*obsLog)
				if err != nil {
					return err
				}
				defer lf.Close()
				lw = lf
			}
			sinks = append(sinks, pesto.NewObsJSONLSink(lw))
		}
		rec = pesto.NewObsRecorder(sinks...)
		ctx = pesto.WithObsRecorder(ctx, rec)
	}
	fmt.Printf("model %s: %d operations, %d edges, %.1f GiB footprint\n",
		*model, g.NumNodes(), g.NumEdges(), float64(g.TotalMemory())/(1<<30))

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f, *model); err != nil {
			return err
		}
		fmt.Println("wrote", *dotPath)
	}

	var plan pesto.Plan
	switch *strategy {
	case "pesto":
		res, err := pesto.PlaceMultiGPU(ctx, g, sys, pesto.PlaceOptions{
			ILPTimeLimit:    *ilpTime,
			ILPMaxNodes:     *ilpNodes,
			CoarsenTarget:   *coarsen,
			ScheduleFromILP: true,
			Parallel:        *parallel,
			Pipeline:        popts,
		})
		if err != nil {
			return err
		}
		plan = res.Plan
		fmt.Printf("pesto: coarse=%d vertices, ilp=%v (gap %.3f, %d nodes), placement time %v\n",
			res.CoarseSize, res.ILPStatus, res.Gap, res.Nodes, res.PlacementTime.Round(time.Millisecond))
		if pi := res.Provenance.Pipeline; pi != nil {
			fmt.Printf("pipeline: %d stages x %d microbatches (%s), step %v vs single-shot %v, bubble %.1f%%\n",
				pi.Stages, pi.Microbatches, pi.Schedule, pi.Makespan, pi.FIFOStep, 100*pi.Bubble)
			for s := range pi.StageDevices {
				fmt.Printf("  stage %d: dev%d %d ops, util %5.1f%%, peak mem %.2f GiB\n",
					s, pi.StageDevices[s], pi.StageOps[s], 100*pi.StageUtil[s], float64(pi.StagePeakMem[s])/(1<<30))
			}
		}
		if perr := res.Provenance.Err(); perr != nil {
			fmt.Println("warning:", perr)
		}
	case "expert":
		branchy := false
		for _, v := range pesto.ModelVariants() {
			if v.Name == *model {
				branchy = v.Branchy
			}
		}
		plan, err = pesto.ExpertPlan(g, sys, branchy)
		if err != nil {
			return err
		}
	case "baechi":
		var name string
		plan, name, _, err = pesto.BaechiPlan(g, sys)
		if err != nil {
			return err
		}
		fmt.Println("baechi heuristic:", name)
	case "single":
		plan, err = pesto.SingleGPUPlan(g, sys)
		if err != nil {
			return err
		}
	case "heft":
		plan, err = pesto.HEFTPlan(g, sys)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	if *replan >= 0 {
		rr, err := pesto.Replan(ctx, g, sys, plan, pesto.DeviceID(*replan), pesto.PlaceOptions{
			ILPTimeLimit:  *ilpTime,
			CoarsenTarget: *coarsen,
			Parallel:      *parallel,
		})
		if err != nil {
			return fmt.Errorf("replan after failing device %d: %w", *replan, err)
		}
		fmt.Printf("replan: device %d failed; migrated %d ops in %v; per-step %v (was %v, recovery delta %+v)\n",
			*replan, rr.Migrated, rr.PlacementTime.Round(time.Millisecond),
			rr.Makespan, rr.PrevMakespan, rr.RecoveryDelta)
		plan = rr.Plan
		sys = rr.Survivors
	}

	var step pesto.StepResult
	if *faultStr != "" {
		spec, err := pesto.ParseFaultSpec(*faultStr)
		if err != nil {
			return err
		}
		inj := pesto.NewFaultInjector(spec)
		fmt.Print(inj.Schedule())
		step, err = pesto.SimulateWithFaults(g, sys, plan, inj)
		if err != nil {
			if errors.Is(err, pesto.ErrDeviceFailed) {
				fmt.Println("result: device failure —", err)
				fmt.Println("hint: rerun with -replan to recover onto the survivors")
				return nil
			}
			if errors.Is(err, pesto.ErrOOM) {
				fmt.Println("result: OOM —", err)
				return nil
			}
			return err
		}
	} else {
		var err error
		step, err = pesto.Simulate(g, sys, plan)
		if err != nil {
			if errors.Is(err, pesto.ErrOOM) {
				fmt.Println("result: OOM —", err)
				return nil
			}
			return err
		}
	}
	fmt.Printf("per-step training time: %v\n", step.Makespan)
	for _, d := range sys.Devices {
		fmt.Printf("  %-8s utilization %5.1f%%\n", d.Name, 100*step.Utilization(d.ID))
	}
	fmt.Printf("  transfers: %d (max queueing %v)\n", len(step.Transfers), step.MaxQueueing())
	if *gantt {
		if err := pesto.WriteGantt(os.Stdout, g, sys, plan, step); err != nil {
			return err
		}
	}
	if *chromeTr != "" {
		f, err := os.Create(*chromeTr)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pesto.WriteChromeTrace(f, g, sys, plan, step); err != nil {
			return err
		}
		fmt.Println("wrote", *chromeTr)
	}
	if rec != nil {
		rec.FlushCounters()
		counters := rec.Counters()
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Print("solver counters:")
			for _, name := range names {
				fmt.Printf(" %s=%d", name, counters[name])
			}
			fmt.Println()
		}
	}
	if *obsTrace != "" {
		f, err := os.Create(*obsTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pesto.WriteChromeTraceObs(f, g, sys, plan, step, obsSink.Records()); err != nil {
			return err
		}
		fmt.Println("wrote", *obsTrace)
	}
	if *planOut != "" {
		f, err := os.Create(*planOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pesto.WritePlan(f, plan); err != nil {
			return err
		}
		fmt.Println("wrote", *planOut)
	}
	for i, tr := range step.Transfers {
		if i >= *timeline {
			break
		}
		fmt.Printf("  [%6v → %6v] dev%d→dev%d %d B (queued %v)\n",
			tr.Start, tr.Finish, tr.From, tr.To, tr.Edge.Bytes, tr.Queued())
	}
	return nil
}

// replayBundle re-executes one flight-recorder capture and verifies
// the solve reproduces the originally served bytes. A mismatch is a
// non-zero exit: the bundle caught a determinism break.
func replayBundle(path string, parallel int) error {
	b, err := pesto.ReadFlightBundle(path)
	if err != nil {
		return err
	}
	fp := b.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	fmt.Printf("bundle: trigger=%s stage=%s seed=%d fingerprint=%s…\n", b.Trigger, b.Stage, b.Seed, fp)
	res, err := pesto.ReplayFlightBundle(context.Background(), b, parallel)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if !res.Match {
		return fmt.Errorf("replay mismatch at stage %s: got %d response bytes, captured %d — determinism break",
			res.Stage, len(res.Got), len(res.Want))
	}
	fmt.Printf("replay: stage %s reproduced the captured response byte-identically (%d bytes)\n",
		res.Stage, len(res.Got))
	return nil
}

// parseSpeeds parses the -device-speeds list: comma-separated positive
// multipliers, one per GPU in device order.
func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	speeds := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speed %q", p)
		}
		if v <= 0 || v != v {
			return nil, fmt.Errorf("speed %q must be positive", p)
		}
		speeds = append(speeds, v)
	}
	return speeds, nil
}
