// Command pesto-experiments regenerates the tables and figures of the
// Pesto paper's evaluation (§5) and prints them as text.
//
// Usage:
//
//	pesto-experiments [-small] [-ilp-time 20s] [-only figure7,table2]
//
// Experiment names: figure2, figure4a, figure4b, table1, figure5,
// figure7, table2, table3, figure8a, figure8b, coarsening, validation,
// extended, multigpu, resilience, pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pesto/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pesto-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pesto-experiments", flag.ContinueOnError)
	var (
		small        = fs.Bool("small", false, "use scaled-down model variants (seconds instead of minutes)")
		ilpTime      = fs.Duration("ilp-time", 0, "Pesto ILP+refinement budget per placement (0 = default)")
		only         = fs.String("only", "", "comma-separated experiment names; empty = all")
		seed         = fs.Int64("seed", 1, "random seed")
		parallel     = fs.Int("parallel", 0, "worker count for placement and experiment cells (0 = GOMAXPROCS); tables are reproducible at -parallel 1, budget-bound cells can shift under contention")
		microbatches = fs.Int("microbatches", 4, "microbatch count for the pipeline experiment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Small: *small, ILPTimeLimit: *ilpTime, Seed: *seed, Parallel: *parallel}
	ctx := context.Background()

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"figure2", func() (fmt.Stringer, error) { return experiments.Figure2(ctx, cfg) }},
		{"figure4a", func() (fmt.Stringer, error) { return experiments.Figure4a(cfg) }},
		{"figure4b", func() (fmt.Stringer, error) { return experiments.Figure4b(cfg) }},
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(cfg) }},
		{"figure5", func() (fmt.Stringer, error) { return experiments.Figure5(ctx, cfg) }},
		{"figure7", func() (fmt.Stringer, error) { return experiments.Figure7(ctx, cfg) }},
		{"table2", func() (fmt.Stringer, error) { return experiments.Table2(ctx, cfg) }},
		{"table3", func() (fmt.Stringer, error) { return experiments.Table3(ctx, cfg) }},
		{"figure8a", func() (fmt.Stringer, error) { return experiments.Figure8a(ctx, cfg) }},
		{"figure8b", func() (fmt.Stringer, error) { return experiments.Figure8b(ctx, cfg) }},
		{"coarsening", func() (fmt.Stringer, error) { return experiments.CoarseningSensitivity(ctx, cfg, nil) }},
		{"validation", func() (fmt.Stringer, error) { return experiments.SimulatorValidation(ctx, cfg) }},
		{"extended", func() (fmt.Stringer, error) { return experiments.ExtendedBaselines(ctx, cfg) }},
		{"multigpu", func() (fmt.Stringer, error) { return experiments.MultiGPU(ctx, cfg) }},
		{"resilience", func() (fmt.Stringer, error) { return experiments.Resilience(ctx, cfg) }},
		{"pipeline", func() (fmt.Stringer, error) { return experiments.PipelineSchedules(ctx, cfg, *microbatches) }},
	}
	ran := 0
	for _, e := range exps {
		if !selected(e.name) {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res)
		fmt.Printf("(%s took %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	return nil
}
