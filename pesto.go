// Package pesto is a from-scratch Go reproduction of "Towards Optimal
// Placement and Scheduling of DNN Operations with Pesto" (Hafeez, Sun,
// Gandhi, Liu — Middleware 2021): joint operation-level placement and
// scheduling of DNN computation graphs on a CPU + 2-GPU machine, built
// on an integer linear program over a communication-augmented DAG, with
// graph coarsening, congestion constraints and memory constraints.
//
// The package is a facade over the implementation packages:
//
//   - graph construction and the model zoo (RNNLM, NMT, Transformer,
//     NASNet and the paper's Figure 2 toy graph),
//   - the hardware model and discrete-event training-step simulator,
//   - the Pesto placement pipeline (coarsen → ILP → refine → expand),
//   - the Expert and Baechi baselines,
//   - profiling (compute times, communication model fits),
//   - the experiment harness regenerating every table and figure of
//     the paper's evaluation (§5).
//
// # Quickstart
//
//	g, _ := pesto.BuildModel("RNNLM-2-2048")
//	sys := pesto.NewSystem(2, 16<<30) // the paper's 2× V100 testbed
//	res, _ := pesto.Place(context.Background(), g, sys, pesto.PlaceOptions{})
//	step, _ := pesto.Simulate(g, sys, res.Plan)
//	fmt.Println("per-step training time:", step.Makespan)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package pesto

import (
	"context"
	"io"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/comm"
	"pesto/internal/fault"
	"pesto/internal/flight"
	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/models"
	"pesto/internal/obs"
	"pesto/internal/pipeline"
	"pesto/internal/placement"
	"pesto/internal/profile"
	"pesto/internal/runtime"
	"pesto/internal/service"
	"pesto/internal/sim"
	"pesto/internal/trace"
	"pesto/internal/verify"
)

// Core graph types.
type (
	// Graph is a DNN computation DAG of operations and tensor edges.
	Graph = graph.Graph
	// Node is one compute operation.
	Node = graph.Node
	// NodeID identifies an operation within a Graph.
	NodeID = graph.NodeID
	// Edge is a precedence edge carrying a tensor.
	Edge = graph.Edge
	// OpKind is an operation's device affinity.
	OpKind = graph.OpKind
)

// Operation kinds (§3.2.1 of the paper: O_C, O_G, O_K).
const (
	KindCPU    = graph.KindCPU
	KindGPU    = graph.KindGPU
	KindKernel = graph.KindKernel
)

// Hardware model types.
type (
	// System is a host with one CPU, a set of GPUs and a communication
	// cost model.
	System = sim.System
	// Device is one compute device.
	Device = sim.Device
	// DeviceID identifies a device within a System.
	DeviceID = sim.DeviceID
	// Plan is a placement plus optional schedule — the output of Pesto
	// and of every baseline.
	Plan = sim.Plan
	// StepResult is the outcome of simulating one training step.
	StepResult = sim.Result
	// TransferEvent records one inter-device tensor transfer.
	TransferEvent = sim.TransferEvent
	// LinkType classifies a communication link.
	LinkType = comm.LinkType
	// CommModel is a fitted linear communication-time model.
	CommModel = comm.Model
)

// Placement types.
type (
	// PlaceOptions configures the Pesto pipeline.
	PlaceOptions = placement.Options
	// PlaceResult is the outcome of Place.
	PlaceResult = placement.Result
	// Variant names one of the paper's model variants.
	Variant = models.Variant
	// Provenance records which rung of the degradation ladder produced
	// a plan; its Err() wraps ErrDegraded for fallback plans.
	Provenance = placement.Provenance
	// Stage names one rung of the degradation ladder.
	Stage = placement.Stage
	// ReplanResult is the outcome of Replan after a device failure.
	ReplanResult = placement.ReplanResult
)

// Degradation-ladder rungs, re-exported for provenance checks.
const (
	StageILP         = placement.StageILP
	StageRefine      = placement.StageRefine
	StagePipelineDP  = placement.StagePipelineDP
	StageFallback    = placement.StageFallback
	StageReplan      = placement.StageReplan
	StageIncremental = placement.StageIncremental
)

// Pipeline-parallel planning types (see DESIGN.md, "Pipeline model").
type (
	// PipelineOptions selects the microbatched pipeline planning regime:
	// set Microbatches > 0 on PlaceOptions.Pipeline and Place searches
	// joint (contiguous stage partition, microbatch schedule) pairs
	// instead of the single-shot ladder.
	PipelineOptions = pipeline.Options
	// PipelineSchedule names a microbatch discipline (auto, GPipe, 1F1B).
	PipelineSchedule = pipeline.ScheduleKind
	// PipelineInfo is the provenance a pipeline-planned Result carries:
	// the winning partition shape, schedule, bubble fraction, per-stage
	// utilization and peak memory, and the single-shot baseline.
	PipelineInfo = pipeline.Info
	// PipelineArtifact is the concrete microbatched execution artifact —
	// the replicated task graph, the scheduled simulator plan and the
	// stage metadata — as re-materialized by BuildPipelinePlan.
	PipelineArtifact = pipeline.Plan
)

// Microbatch schedule disciplines.
const (
	PipelineScheduleAuto  = pipeline.ScheduleAuto
	PipelineScheduleGPipe = pipeline.ScheduleGPipe
	PipelineSchedule1F1B  = pipeline.Schedule1F1B
)

// ErrBadPipelineSpec marks malformed pipeline spec strings (see
// ParsePipelineSpec).
var ErrBadPipelineSpec = pipeline.ErrBadSpec

// ParsePipelineSpec parses the compact CLI form of PipelineOptions,
// e.g. "mb=8,sched=1f1b,bwd=1.5". Malformed input yields an error
// wrapping ErrBadPipelineSpec.
func ParsePipelineSpec(spec string) (PipelineOptions, error) { return pipeline.ParseSpec(spec) }

// ParsePipelineSchedule parses a schedule discipline name ("auto",
// "gpipe", "1f1b" and their aliases).
func ParsePipelineSchedule(s string) (PipelineSchedule, error) { return pipeline.ParseSchedule(s) }

// BuildPipelinePlan re-materializes the microbatched pipeline execution
// artifact for a graph placed with PlaceOptions.Pipeline: the
// microbatch-replicated task graph, the per-device schedule realizing
// the winning discipline, and the stage metadata VerifyPipelinePlan
// consumes. The construction is deterministic: equal inputs yield the
// artifact the original Place call scored.
func BuildPipelinePlan(g *Graph, sys System, opts PlaceOptions) (*PipelineArtifact, error) {
	return placement.PipelinePlan(g, sys, opts)
}

// VerifyPipelinePlan re-proves a microbatched pipeline artifact: every
// generic plan invariant plus the pipeline-shaped ones (stage
// contiguity, schedule discipline, stage/device consistency, per-stage
// peak memory, per-microbatch cross-stage ordering). Pipeline-specific
// rejections wrap ErrPipelineInvariant.
func VerifyPipelinePlan(p *PipelineArtifact, sys System) (StepResult, error) {
	return verify.CheckPipeline(p.Graph, sys, p.Sim, p.Meta)
}

// ErrPipelineInvariant marks pipeline-invariant violations; it wraps
// ErrInvariant.
var ErrPipelineInvariant = verify.ErrPipeline

// ReplanArrival rebalances a running plan onto a newly arrived (or
// recovered) GPU: the heaviest movable groups migrate onto the
// newcomer, the refinement machinery re-optimizes from both the
// incumbent and the migrated seed, and the better of the two is
// returned — so scaling up never makes the step slower. The mirror
// image of Replan's device-loss path.
func ReplanArrival(ctx context.Context, g *Graph, sys System, plan Plan, arrived DeviceID, opts PlaceOptions) (*ReplanResult, error) {
	return placement.ReplanArrival(ctx, g, sys, plan, arrived, opts)
}

// Incremental placement types (evolving graphs; see DESIGN.md,
// "Incremental model").
type (
	// PriorPlacement carries the previous graph, its plan and the chain
	// bookkeeping into Incremental.
	PriorPlacement = placement.PriorPlacement
	// IncrementalInfo is the per-solve provenance Incremental attaches:
	// dirty/clean group counts, chain depth, the chain's quality record,
	// and the cold-fallback reason when the warm path declined.
	IncrementalInfo = placement.IncrementalInfo
	// GraphEdit is one graph mutation (insert, delete, reweight,
	// reweight-edge, rewire, grow-layer).
	GraphEdit = incr.Edit
	// GraphDiff is the structural comparison Incremental runs between a
	// prior graph and its edited successor.
	GraphDiff = incr.Diff
	// EditTraceConfig configures the seeded edit-trace generator.
	EditTraceConfig = gen.EditTraceConfig
)

// Fault-injection types.
type (
	// FaultSpec is a parsed fault schedule (see ParseFaultSpec).
	FaultSpec = fault.Spec
	// FaultInjector realizes a FaultSpec as the deterministic hook set
	// both engines honor.
	FaultInjector = fault.Injector
	// Injector is the hook interface SimulateWithFaults and
	// ExecuteWithFaults accept; *FaultInjector implements it.
	Injector = sim.Injector
	// DeviceFailedError reports which device failed and when; it
	// unwraps to ErrDeviceFailed.
	DeviceFailedError = sim.DeviceFailedError
)

// Errors re-exported for matching with errors.Is.
var (
	// ErrOOM marks placements whose cumulative footprint exceeds a
	// device's memory.
	ErrOOM = sim.ErrOOM
	// ErrBadPlacement marks structurally invalid plans.
	ErrBadPlacement = sim.ErrBadPlacement
	// ErrUnsupportedSystem marks systems the Pesto ILP does not cover.
	ErrUnsupportedSystem = placement.ErrUnsupportedSystem
	// ErrDegraded marks plans served by a fallback rung of the
	// degradation ladder (via Provenance.Err()) or by Replan.
	ErrDegraded = placement.ErrDegraded
	// ErrDeviceFailed marks steps aborted by an injected whole-device
	// failure; the concrete error is a *DeviceFailedError.
	ErrDeviceFailed = sim.ErrDeviceFailed
	// ErrWorkerPanic marks runtime executions whose device or link
	// worker panicked; the panic is recovered into this error.
	ErrWorkerPanic = runtime.ErrWorkerPanic
	// ErrBadFaultSpec marks malformed fault-spec strings.
	ErrBadFaultSpec = fault.ErrBadSpec
	// ErrInvariant is the base error of every plan-verification
	// failure; the class sentinels in internal/verify (affinity,
	// colocation, memory, schedule, precedence, device/link overlap,
	// accounting) all wrap it.
	ErrInvariant = verify.ErrInvariant
	// ErrVerification marks plans rejected by post-placement
	// verification (PlaceOptions.Verify); it wraps the specific
	// invariant-class error, which in turn wraps ErrInvariant.
	ErrVerification = placement.ErrVerification
)

// Verification and generated-workload types (the differential
// verification harness; see DESIGN.md, "Verification model").
type (
	// GenConfig configures the seeded random-DAG generator.
	GenConfig = gen.Config
	// GenFamily selects a generated-graph topology family (chains,
	// diamonds, layered transformer/NMT-like fan-outs, colocation-heavy
	// variants, unstructured random DAGs).
	GenFamily = gen.Family
)

// NewGraph returns an empty computation graph with a capacity hint.
func NewGraph(hint int) *Graph { return graph.New(hint) }

// NewSystem builds a system with one CPU and numGPUs GPUs of the given
// memory capacity, with the default NVLink/PCIe communication model.
// NewSystem(2, 16<<30) reproduces the paper's testbed.
func NewSystem(numGPUs int, gpuMemory int64) System {
	return sim.NewSystem(numGPUs, gpuMemory)
}

// Place runs the Pesto placement-and-scheduling pipeline (§3 of the
// paper) on g for sys.
func Place(ctx context.Context, g *Graph, sys System, opts PlaceOptions) (*PlaceResult, error) {
	return placement.Place(ctx, g, sys, opts)
}

// Simulate executes one training step of a placed graph on the
// discrete-event simulator and reports the per-step time, per-device
// utilization and the transfer timeline.
func Simulate(g *Graph, sys System, plan Plan) (StepResult, error) {
	return sim.Run(g, sys, plan)
}

// Execute runs one training step on the concurrent runtime executor
// (one goroutine per device, virtual clock) — the engine used to
// validate the simulator as in §5.4. The plan must carry an explicit
// per-device order, which Place produces with ScheduleFromILP.
func Execute(g *Graph, sys System, plan Plan, noiseSigma float64, seed int64) (time.Duration, error) {
	res, err := runtime.Execute(g, sys, plan, runtime.Options{NoiseSigma: noiseSigma, Seed: seed})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// ParseFaultSpec parses a fault schedule from its compact string form,
// e.g. "seed=42;straggler:p=0.05,mult=8;link:0-1,scale=4;mem:2,frac=0.5@2ms;fail:2@5ms".
// See internal/fault for the full grammar. Malformed input yields an
// error wrapping ErrBadFaultSpec; no input ever panics.
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.ParseSpec(s) }

// NewFaultInjector realizes a FaultSpec as a deterministic injector:
// equal specs (same seed) produce byte-identical fault schedules on
// both engines, at any parallelism.
func NewFaultInjector(spec FaultSpec) *FaultInjector { return fault.New(spec) }

// SimulateWithFaults is Simulate with every compute time, transfer time
// and memory capacity filtered through inj. Injected whole-device
// failures surface as *DeviceFailedError (errors.Is ErrDeviceFailed);
// injected memory shrinkage surfaces as ErrOOM mid-run.
func SimulateWithFaults(g *Graph, sys System, plan Plan, inj Injector) (StepResult, error) {
	return sim.RunInjected(g, sys, plan, inj)
}

// ExecuteWithFaults is Execute with the same fault hooks the simulator
// honors, so both engines realize one fault schedule identically.
func ExecuteWithFaults(g *Graph, sys System, plan Plan, inj Injector, noiseSigma float64, seed int64) (time.Duration, error) {
	res, err := runtime.Execute(g, sys, plan, runtime.Options{NoiseSigma: noiseSigma, Seed: seed, Injector: inj})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// Replan recovers from the failure of a device: it migrates every
// operation off the failed device onto the survivors under the memory
// constraints, re-optimizes with the refinement machinery, and returns
// a valid degraded plan together with the recovery-makespan delta. The
// result's Provenance wraps ErrDegraded; insufficient survivor memory
// fails with ErrOOM rather than degrading around the constraint.
func Replan(ctx context.Context, g *Graph, sys System, plan Plan, failed DeviceID, opts PlaceOptions) (*ReplanResult, error) {
	return placement.Replan(ctx, g, sys, plan, failed, opts)
}

// ExpertPlan returns the manual expert placement: contiguous layer
// blocks for sequential models, branch splitting when branches is true
// (the NASNet recipe).
func ExpertPlan(g *Graph, sys System, branches bool) (Plan, error) {
	mode := baselines.ExpertLayered
	if branches {
		mode = baselines.ExpertBranches
	}
	return baselines.Expert(g, sys, mode)
}

// BaechiPlan returns the best of Baechi's m-SCT, m-ETF and m-TOPO
// placements (as the paper reports), with the winning heuristic's name
// and its simulated per-step time.
func BaechiPlan(g *Graph, sys System) (Plan, string, time.Duration, error) {
	plan, h, mk, err := baselines.BestBaechi(g, sys)
	return plan, h.String(), mk, err
}

// SingleGPUPlan places every GPU operation on the first GPU —
// TensorFlow's default behaviour.
func SingleGPUPlan(g *Graph, sys System) (Plan, error) {
	return baselines.SingleGPU(g, sys)
}

// HEFTPlan returns the classic Heterogeneous-Earliest-Finish-Time
// placement (one of the ad-hoc heuristics §6 of the paper discusses).
func HEFTPlan(g *Graph, sys System) (Plan, error) {
	return baselines.HEFT(g, sys)
}

// PlaceMultiGPU extends Place to systems with more than two GPUs — the
// §3.2.2 extension, implemented with Pesto's warm-start and refinement
// machinery generalized to k devices (the exact ILP covers the paper's
// primary two-GPU setting, to which this defers when k == 2).
func PlaceMultiGPU(ctx context.Context, g *Graph, sys System, opts PlaceOptions) (*PlaceResult, error) {
	return placement.PlaceMultiGPU(ctx, g, sys, opts)
}

// Incremental re-places an edited graph starting from a prior plan:
// groups whose sub-fingerprints are unchanged keep their devices, the
// edit-dirty neighborhood is re-solved, and the result is re-proved by
// the full invariant checker before it is returned. When the warm path
// cannot match the chain's quality record — or the edit restructures
// the graph — it falls back to a from-scratch solve and says so in
// Provenance.Incremental.FallbackReason. Chain successive calls by
// building the next PriorPlacement from the returned plan and
// IncrementalInfo.
func Incremental(ctx context.Context, g *Graph, sys System, prior PriorPlacement, opts PlaceOptions) (*PlaceResult, error) {
	return placement.Incremental(ctx, g, sys, prior, opts)
}

// ApplyEdit applies one graph edit, returning the edited graph and the
// old-node → new-node map Incremental needs to carry placements across.
func ApplyEdit(g *Graph, e GraphEdit) (*Graph, []NodeID, error) {
	return incr.Apply(g, e)
}

// CompareGraphs structurally diffs an edited graph against its base
// under the given node map — the same comparison Incremental uses to
// decide which coarse groups must be re-solved.
func CompareGraphs(base, edited *Graph, nodeMap []NodeID) GraphDiff {
	return incr.Compare(base, edited, nodeMap)
}

// GenerateEditTrace derives a seeded sequence of graph edits from a
// base graph — the workload of the edit-trace differential sweep. Equal
// configs yield byte-identical traces.
func GenerateEditTrace(base *Graph, cfg EditTraceConfig) ([]GraphEdit, error) {
	return gen.EditTrace(base, cfg)
}

// WriteGantt renders the timeline of a simulated step as a text Gantt
// chart (device lanes plus link lanes with queueing markers — the
// Figure 5 visualization).
func WriteGantt(w io.Writer, g *Graph, sys System, plan Plan, res StepResult) error {
	return trace.Gantt(w, g, sys, plan, res, trace.Options{})
}

// WriteChromeTrace exports a simulated step in the Chrome Trace Event
// format (chrome://tracing, Perfetto): one lane per device plus one per
// directional link.
func WriteChromeTrace(w io.Writer, g *Graph, sys System, plan Plan, res StepResult) error {
	return trace.WriteChromeTrace(w, g, sys, plan, res)
}

// Telemetry types, re-exported for the CLI and embedders (see
// DESIGN.md, "Observability model"). A nil *ObsRecorder — and a
// context without one — is a valid no-op everywhere.
type (
	// ObsRecorder collects spans, counters and samples from the solver
	// pipeline; attach it to a context with WithObsRecorder.
	ObsRecorder = obs.Recorder
	// ObsRecord is one finished telemetry record.
	ObsRecord = obs.Record
	// ObsSink receives finished records.
	ObsSink = obs.Sink
	// ObsMemorySink buffers records in memory.
	ObsMemorySink = obs.MemorySink
)

// NewObsRecorder builds a recorder fanning out to the given sinks.
func NewObsRecorder(sinks ...ObsSink) *ObsRecorder { return obs.NewRecorder(sinks...) }

// NewObsMemorySink buffers telemetry records in memory, for later
// export with WriteChromeTraceObs.
func NewObsMemorySink() *ObsMemorySink { return obs.NewMemorySink() }

// NewObsJSONLSink streams every telemetry record as one JSON log line.
func NewObsJSONLSink(w io.Writer) ObsSink { return obs.NewJSONLSink(w) }

// WithObsRecorder attaches a recorder to the context; Place,
// PlaceMultiGPU and Replan emit their telemetry to it.
func WithObsRecorder(ctx context.Context, rec *ObsRecorder) context.Context {
	return obs.Into(ctx, rec)
}

// WriteChromeTraceObs exports the simulated step and the solver's
// telemetry records as one Chrome Trace Event file on a shared
// timeline: the execution lanes of WriteChromeTrace plus a solver
// process holding the span tree, the incumbent/bound counter tracks
// and instant markers.
func WriteChromeTraceObs(w io.Writer, g *Graph, sys System, plan Plan, res StepResult, recs []ObsRecord) error {
	return trace.WriteChromeTraceObs(w, g, sys, plan, res, recs)
}

// NewMultiHostSystem builds a hierarchical topology: hosts × gpusPerHost
// GPUs with NVLink within a host and a datacenter network between hosts
// (the hierarchical communication models §3.2.2 mentions).
func NewMultiHostSystem(hosts, gpusPerHost int, gpuMemory int64) System {
	return sim.NewMultiHostSystem(hosts, gpusPerHost, gpuMemory)
}

// WritePlan serializes a plan as JSON.
func WritePlan(w io.Writer, p Plan) error { return sim.WritePlanJSON(w, p) }

// ReadPlan parses a JSON plan.
func ReadPlan(r io.Reader) (Plan, error) { return sim.ReadPlanJSON(r) }

// WriteGraph serializes a graph as JSON.
func WriteGraph(w io.Writer, g *Graph) error { return g.WriteJSON(w) }

// ReadGraph parses a JSON graph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadJSON(r) }

// BuildModel constructs one of the paper's model variants by name
// (e.g. "RNNLM-2-2048", "NMT-4-1024", "Transformer-6-16-2048",
// "NASNet-4-212", or the scaled-down "*-small" counterparts).
func BuildModel(name string) (*Graph, error) {
	v, err := models.FindVariant(name)
	if err != nil {
		return nil, err
	}
	return v.Build()
}

// ModelVariants lists the paper's eleven full-scale variants.
func ModelVariants() []Variant { return models.PaperVariants() }

// VerifyPlan re-proves a plan against the independent invariant checker
// and one simulated step: device affinity, colocation integrity, memory
// capacity, schedule shape, precedence through communication, device
// and link serialization, FCFS link discipline and makespan accounting.
// It returns the simulated step so callers get the makespan for free.
// Rejections wrap ErrInvariant plus a per-class sentinel (see
// internal/verify).
func VerifyPlan(g *Graph, sys System, plan Plan) (StepResult, error) {
	return verify.Check(g, sys, plan)
}

// MakespanLowerBound computes an LP-relaxation lower bound no feasible
// placement/schedule of g on sys can beat — the oracle the sweep tests
// hold every engine to.
func MakespanLowerBound(g *Graph, sys System) (time.Duration, error) {
	return verify.LowerBound(g, sys)
}

// GenerateGraph builds a seeded random computation DAG from one of the
// generator families. Equal configs yield byte-identical graphs.
func GenerateGraph(cfg GenConfig) (*Graph, error) { return gen.Generate(cfg) }

// RandomGraphConfig derives a deterministic generator config (family,
// size, cost/tensor/memory distributions) from a single seed — the
// instance distribution the `make verify` sweep draws from.
func RandomGraphConfig(seed int64) GenConfig { return gen.RandomConfig(seed) }

// ProfileCompute estimates per-operation compute times by running the
// given number of training iterations on the runtime executor (§3.1;
// the paper uses 100). It overwrites g's costs with the measured means
// and returns the normalized-stddev CDF (sorted, small ops filtered at
// 10µs) — the Figure 4a data.
func ProfileCompute(g *Graph, iterations int, seed int64) ([]float64, error) {
	prof, err := profile.Compute(g, profile.Options{Iterations: iterations, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := prof.ApplyTo(g); err != nil {
		return nil, err
	}
	return prof.StddevCDF(10 * time.Microsecond), nil
}

// ProfileCommunication fits the linear communication-time model for a
// link type by timing transfers of varying sizes (§3.1, Figure 4b).
func ProfileCommunication(sys System, lt LinkType, seed int64) (CommModel, error) {
	prof, err := profile.Communication(sys, lt, profile.CommOptions{Seed: seed})
	if err != nil {
		return CommModel{}, err
	}
	return prof.Model, nil
}

// Placement-as-a-service (the pestod daemon's embeddable core; see
// DESIGN.md, "Serving model").
type (
	// ServiceConfig sizes the placement daemon: solver concurrency,
	// wait-queue depth, plan-cache entries, solve budgets.
	ServiceConfig = service.Config
	// PlacementServer is the placement-as-a-service HTTP handler:
	// content-addressed plan cache, admission control, /metrics.
	// cmd/pestod wraps it in an http.Server.
	PlacementServer = service.Server
)

// NewPlacementServer builds the placement daemon core. Mount it on any
// http.Server and call Drain before exit.
func NewPlacementServer(cfg ServiceConfig) *PlacementServer { return service.New(cfg) }

// Flight-recorder repro bundles (see DESIGN.md, "Distributed tracing,
// flight recorder, and SLOs"). The daemon captures one when a solve
// crosses its rolling-p99 baseline, the ladder collapses to the
// fallback rung, verification fails or an SLO burns too fast;
// `pesto -replay-bundle` re-executes it byte-deterministically.
type (
	// FlightBundle is one self-contained repro capture: graph, options,
	// seed, spans, and the served response bytes.
	FlightBundle = flight.Bundle
	// FlightReplayResult reports whether a replay reproduced the
	// captured response byte-for-byte.
	FlightReplayResult = service.ReplayResult
)

// ReadFlightBundle loads and schema-checks one bundle file.
func ReadFlightBundle(path string) (FlightBundle, error) { return flight.ReadBundleFile(path) }

// ReplayFlightBundle re-executes a captured bundle: same graph, same
// normalized options, same seed. parallel only changes speed, never
// bytes (zero = GOMAXPROCS).
func ReplayFlightBundle(ctx context.Context, b FlightBundle, parallel int) (FlightReplayResult, error) {
	return service.ReplayBundle(ctx, b, parallel)
}

// GraphFingerprint returns the canonical SHA-256 content address of a
// graph: clone-stable, insensitive to node names and edge insertion
// order, sensitive to every placement-relevant field. It keys the
// daemon's plan cache.
func GraphFingerprint(g *Graph) [32]byte { return g.Fingerprint() }

// StageForDeadline maps a solve budget onto the degradation ladder's
// entry rung: tight budgets start at the heuristic rung, generous ones
// at the exact ILP.
func StageForDeadline(budget time.Duration) Stage { return placement.StageForDeadline(budget) }
