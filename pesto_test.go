package pesto

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := BuildModel("RNNLM-small")
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	sys := NewSystem(2, 16<<30)
	res, err := Place(context.Background(), g, sys, PlaceOptions{ILPTimeLimit: 2 * time.Second, ScheduleFromILP: true})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	step, err := Simulate(g, sys, res.Plan)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if step.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// The runtime executor agrees with the simulator to a few percent.
	mk, err := Execute(g, sys, res.Plan, 0, 0)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	diff := float64(mk-step.Makespan) / float64(step.Makespan)
	if diff < -0.1 || diff > 0.1 {
		t.Fatalf("runtime %v vs simulator %v", mk, step.Makespan)
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	g, err := BuildModel("NASNet-small")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	if _, err := ExpertPlan(g, sys, true); err != nil {
		t.Errorf("ExpertPlan: %v", err)
	}
	if _, name, mk, err := BaechiPlan(g, sys); err != nil || name == "" || mk <= 0 {
		t.Errorf("BaechiPlan: %v %v %v", name, mk, err)
	}
	if _, err := SingleGPUPlan(g, sys); err != nil {
		t.Errorf("SingleGPUPlan: %v", err)
	}
}

func TestProfilingThroughFacade(t *testing.T) {
	g, err := BuildModel("Transformer-small")
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := ProfileCompute(g, 10, 1)
	if err != nil {
		t.Fatalf("ProfileCompute: %v", err)
	}
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	sys := NewSystem(2, 16<<30)
	m, err := ProfileCommunication(sys, LinkType(3) /* GPU→GPU */, 1)
	if err != nil {
		t.Fatalf("ProfileCommunication: %v", err)
	}
	if m.R2 < 0.9 {
		t.Errorf("R² = %g", m.R2)
	}
}

func TestErrorsExported(t *testing.T) {
	g := NewGraph(2)
	a := g.AddNode(Node{Kind: KindGPU, Cost: time.Microsecond, Memory: 20 << 30})
	b := g.AddNode(Node{Kind: KindGPU, Cost: time.Microsecond, Memory: 20 << 30})
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	_, err := Simulate(g, sys, Plan{Device: []DeviceID{1, 2}})
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	if _, err := Place(context.Background(), g, NewSystem(1, 16<<30), PlaceOptions{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("err = %v, want ErrUnsupportedSystem", err)
	}
}

func TestModelVariantsComplete(t *testing.T) {
	vs := ModelVariants()
	if len(vs) != 11 {
		t.Fatalf("variants = %d, want the paper's 11", len(vs))
	}
	for _, v := range vs {
		if _, err := BuildModel(v.Name); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
	if _, err := BuildModel("unknown"); err == nil {
		t.Error("unknown variant should fail")
	}
}

// TestPipelineThroughFacade exercises the microbatched pipeline regime
// end to end via the public surface: plan, inspect provenance,
// re-materialize the artifact, re-verify it.
func TestPipelineThroughFacade(t *testing.T) {
	g, err := BuildModel("RNNLM-small")
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	sys := NewSystem(2, 16<<30)
	popts, err := ParsePipelineSpec("mb=4,sched=gpipe")
	if err != nil {
		t.Fatalf("ParsePipelineSpec: %v", err)
	}
	opts := PlaceOptions{ILPTimeLimit: 2 * time.Second, Pipeline: popts}
	res, err := Place(context.Background(), g, sys, opts)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.Provenance.Stage != StagePipelineDP || res.Provenance.Pipeline == nil {
		t.Fatalf("provenance = %+v, want pipeline-dp with info", res.Provenance)
	}
	info := res.Provenance.Pipeline
	if info.Microbatches != 4 || info.Schedule != "gpipe" {
		t.Fatalf("info = %+v", info)
	}
	art, err := BuildPipelinePlan(g, sys, opts)
	if err != nil {
		t.Fatalf("BuildPipelinePlan: %v", err)
	}
	step, err := VerifyPipelinePlan(art, sys)
	if err != nil {
		t.Fatalf("VerifyPipelinePlan: %v", err)
	}
	if step.Makespan != info.Makespan {
		t.Fatalf("verified step %v != provenance %v", step.Makespan, info.Makespan)
	}
	// A corrupted artifact is rejected with the exported sentinel.
	art.Meta.Stages = 0
	if _, err := VerifyPipelinePlan(art, sys); !errors.Is(err, ErrPipelineInvariant) || !errors.Is(err, ErrInvariant) {
		t.Fatalf("corrupt artifact error %v must wrap ErrPipelineInvariant and ErrInvariant", err)
	}
	if _, err := ParsePipelineSpec("mb=oops"); !errors.Is(err, ErrBadPipelineSpec) {
		t.Fatalf("bad spec error %v must wrap ErrBadPipelineSpec", err)
	}
	if k, err := ParsePipelineSchedule("1f1b"); err != nil || k != PipelineSchedule1F1B {
		t.Fatalf("ParsePipelineSchedule = %v, %v", k, err)
	}
}
