GO ?= go

# Size of the differential-verification sweep (seeded random DAG
# instances driven through every engine and held to the invariant
# checker + LP lower bound). Plain `go test` uses a small default;
# `make verify` runs the full population.
SWEEP ?= 1000

.PHONY: build test check bench bench-lp bench-incr bench-pipeline fmt vet verify smoke obs-smoke fleet-smoke trace-smoke chaos bench-fleet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: gofmt, vet, build, and the unit tests under the race
# detector (the placement engine is concurrent; races are correctness
# bugs here, not style).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 2h

# The LP-rung gate: times the revised-simplex cold solve of the exact
# rung's root relaxation (BenchmarkLPRung in short mode skips the dense
# reference) and fails if it regresses >2x over the committed
# BENCH_lp.json snapshot. Regenerate the snapshot with
# `go test -bench BenchmarkLPRung -benchtime 3x ./internal/placement/`.
bench-lp:
	PESTO_BENCH_LP=1 $(GO) test -short -run TestLPRungRegression \
		-bench BenchmarkLPRung -benchtime 3x -count=1 -v ./internal/placement/

# The incremental-placement gate: re-times the warm re-place over the
# benchmark edit trace and fails if it regresses >2x over the committed
# BENCH_incr.json snapshot (which itself must claim >=10x over cold and
# a worst-case makespan ratio <=1.05). Regenerate the snapshot with
# `go test -bench BenchmarkIncrementalTrace -benchtime 3x ./internal/placement/`.
bench-incr:
	PESTO_BENCH_INCR=1 $(GO) test -short -run TestIncrRegression \
		-count=1 -v ./internal/placement/

# The pipeline-rung gate: re-times the contiguous-split DP rung
# (StagePipelineDP) and fails if it regresses >2x over the committed
# BENCH_pipeline.json snapshot (which itself records the DP rung's
# latency and plan quality against the exact ILP rung). Regenerate the
# snapshot with
# `go test -bench BenchmarkPipelineDPRung -benchtime 3x ./internal/placement/`.
bench-pipeline:
	PESTO_BENCH_PIPELINE=1 $(GO) test -short -run TestPipelineRegression \
		-count=1 -v ./internal/placement/

# Length of the incremental edit-trace sweep (one seeded trace replayed
# through placement.Incremental with per-step invariant, quality and
# byte-determinism oracles). Plain `go test` uses a short default;
# `make verify` replays the full trace.
INCR_STEPS ?= 500

# The differential verification sweep: $(SWEEP) seeded instances across
# baselines, the placement ladder, replanning, both execution engines
# and the k-GPU/multi-host variants, each held to the independent
# invariant checker and the LP-relaxation lower bound, plus the
# $(INCR_STEPS)-step incremental edit-trace sweep.
verify:
	PESTO_SWEEP=$(SWEEP) PESTO_INCR_STEPS=$(INCR_STEPS) $(GO) test ./internal/verify/ ./internal/gen/ -count=1 -timeout 60m -run 'TestSweep|TestGenerate' -v

# End-to-end smoke test of the pestod daemon: build, serve, solve,
# cache-hit byte-identity, /metrics scrape, SIGTERM drain.
smoke:
	bash scripts/smoke_pestod.sh

# End-to-end smoke test of the telemetry surfaces: X-Request-ID through
# header, span dump, JSONL log and metrics; pprof; and the pesto CLI's
# combined solver+execution Chrome trace.
obs-smoke:
	bash scripts/smoke_obs.sh

# End-to-end smoke test of fleet mode: a 3-replica in-process fleet
# (route/hit/batch-dedupe/metrics/drain) plus an HTTP-backend router
# that survives a replica kill.
fleet-smoke:
	bash scripts/smoke_fleet.sh

# End-to-end smoke test of fleet-wide tracing: a 3-replica HTTP fleet,
# a solve under a client trace ID, the stitched cross-replica Chrome
# trace at GET /v1/requests/{id}/trace, then a replica kill whose
# failover must show up as a failed hop in the next request's trace.
trace-smoke:
	bash scripts/smoke_trace.sh

# The fleet chaos sweep: $(CHAOS) Zipf requests through a 3-replica
# fleet while the fixed fault schedule kills, restarts and blinds
# replicas. Asserts zero failed requests, oracle byte-identity and
# hit-rate recovery; the test logs the spec/seed needed to replay a
# failure.
CHAOS ?= 10000
chaos:
	PESTO_CHAOS_REQUESTS=$(CHAOS) $(GO) test ./internal/fleet/ \
		-run TestFleetChaosDeterministicZeroFailures -count=1 -v -timeout 20m

# Regenerate the committed BENCH_fleet.json (100k-request chaos run
# recording latency percentiles, throughput and hit-rate recovery).
bench-fleet:
	PESTO_BENCH_FLEET=1 $(GO) test ./internal/fleet/ \
		-run TestFleetChaosBench -count=1 -v -timeout 30m

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
