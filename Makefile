GO ?= go

.PHONY: build test check bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: gofmt, vet, build, and the unit tests under the race
# detector (the placement engine is concurrent; races are correctness
# bugs here, not style).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 2h

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
